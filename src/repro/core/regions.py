"""The region layer of the two-tier control plane.

City-scale meshes cannot run one global observe/plan/act loop: probe
load and migration-decision latency both grow with the number of nodes
and tenants (see ROADMAP's fleet-scale item and the decentralized
resource-mapping designs in PAPERS.md).  This module shards the control
plane geographically:

* :func:`partition_topology` deterministically splits a mesh into
  balanced, connectivity-aware regions (explicit layouts are supported
  through :class:`RegionSpec` / ``FleetConfig.region_specs``).
* :class:`RegionController` owns one region's runtime: a region-scoped
  :class:`~repro.core.netmonitor.NetMonitor` view (probe dedup and the
  headroom cache are per-region; startup floods and epoch probing never
  cross a region boundary) and the local claims board its tenants
  arbitrate against.

Claims are *eventually consistent*: while a fleet round is in flight,
each region sees only its own claims plus the fleet arbiter's published
board from the previous round (other regions' claims arrive one round
late).  Conflicting same-round claims from different regions are
resolved after the fact by the arbiter's (severity, epoch, region)
ordering — see :class:`~repro.core.controlplane.FleetArbiter`.

A migration whose only viable target lies in another region is not
executed locally; the region queues a :class:`HandoffRequest` that the
fleet layer brokers through the two-phase handoff protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..errors import TopologyError
from ..mesh.topology import MeshTopology
from ..obs.trace import TracerBase, resolve_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .netmonitor import NetMonitor


@dataclass(frozen=True)
class RegionSpec:
    """One region: a name and the set of mesh nodes it owns."""

    name: str
    nodes: frozenset[str]

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("region name must be non-empty")
        if not self.nodes:
            raise TopologyError(f"region {self.name!r} has no nodes")


class RegionMap:
    """A validated, disjoint partition of a mesh into named regions."""

    def __init__(self, specs: Sequence[RegionSpec]) -> None:
        if not specs:
            raise TopologyError("a region map needs at least one region")
        self._specs: dict[str, RegionSpec] = {}
        self._region_of: dict[str, str] = {}
        for spec in sorted(specs, key=lambda s: s.name):
            if spec.name in self._specs:
                raise TopologyError(f"duplicate region {spec.name!r}")
            for node in spec.nodes:
                if node in self._region_of:
                    raise TopologyError(
                        f"node {node!r} is in both region "
                        f"{self._region_of[node]!r} and {spec.name!r}"
                    )
                self._region_of[node] = spec.name
            self._specs[spec.name] = spec

    @property
    def names(self) -> list[str]:
        """Region names in deterministic (sorted) order."""
        return list(self._specs)

    @property
    def specs(self) -> list[RegionSpec]:
        return list(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def spec(self, name: str) -> RegionSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise TopologyError(f"unknown region {name!r}") from None

    def region_of(self, node: str) -> str:
        try:
            return self._region_of[node]
        except KeyError:
            raise TopologyError(
                f"node {node!r} belongs to no region"
            ) from None

    def validate_covers(self, topology: MeshTopology) -> "RegionMap":
        """Assert every topology node is assigned to exactly one region."""
        missing = [
            name for name in topology.node_names if name not in self._region_of
        ]
        if missing:
            raise TopologyError(f"nodes missing from region map: {missing}")
        return self

    def home_of_nodes(self, nodes: Iterable[str]) -> str:
        """The region hosting the most of ``nodes`` (ties: region order).

        Used to home a tenant: the region where the majority of its pods
        live runs its observe/plan/act loop.
        """
        counts: dict[str, int] = {}
        for node in nodes:
            region = self.region_of(node)
            counts[region] = counts.get(region, 0) + 1
        if not counts:
            raise TopologyError("cannot home a tenant with no placed pods")
        return min(counts, key=lambda name: (-counts[name], name))

    @staticmethod
    def from_config(topology: MeshTopology, fleet_config) -> "RegionMap":
        """Build the map a ``FleetConfig`` describes (explicit specs win
        over the deterministic partitioner)."""
        if fleet_config.region_specs is not None:
            return RegionMap(
                [
                    RegionSpec(name, frozenset(nodes))
                    for name, nodes in fleet_config.region_specs
                ]
            ).validate_covers(topology)
        return partition_topology(topology, fleet_config.regions or 1)


def partition_topology(
    topology: MeshTopology, n_regions: int, *, prefix: str = "region"
) -> RegionMap:
    """Deterministically partition a mesh into balanced regions.

    Seeds are chosen farthest-first over hop distance (ties by name, so
    the result is independent of hash seeds and insertion order), then
    regions grow by balanced BFS: each step, the smallest region claims
    the lexicographically-smallest unassigned node on its frontier.
    Disconnected leftovers fall to the smallest region, so the map
    always covers the whole mesh.
    """
    names = sorted(topology.node_names)
    if n_regions < 1:
        raise TopologyError("n_regions must be >= 1")
    if n_regions > len(names):
        raise TopologyError(
            f"cannot split {len(names)} nodes into {n_regions} regions"
        )
    hop = _hop_distances(topology, names)

    # Farthest-first seed selection.
    seeds = [names[0]]
    while len(seeds) < n_regions:
        best = None
        best_rank = None
        for name in names:
            if name in seeds:
                continue
            nearest = min(hop[seed].get(name, len(names)) for seed in seeds)
            rank = (-nearest, name)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = name
        seeds.append(best)

    assigned: dict[str, int] = {seed: i for i, seed in enumerate(seeds)}
    members: list[list[str]] = [[seed] for seed in seeds]
    frontiers: list[set[str]] = [
        {n for n in topology.neighbors(seed) if n not in assigned}
        for seed in seeds
    ]
    while len(assigned) < len(names):
        # The smallest region (ties: lowest index) grows next.
        order = sorted(range(n_regions), key=lambda i: (len(members[i]), i))
        grew = False
        for index in order:
            frontier = sorted(
                n for n in frontiers[index] if n not in assigned
            )
            if not frontier:
                continue
            node = frontier[0]
            assigned[node] = index
            members[index].append(node)
            frontiers[index] |= {
                n for n in topology.neighbors(node) if n not in assigned
            }
            grew = True
            break
        if not grew:
            # Disconnected remainder: smallest region takes the
            # smallest-named unassigned node.
            node = next(n for n in names if n not in assigned)
            index = order[0]
            assigned[node] = index
            members[index].append(node)
            frontiers[index] |= {
                n for n in topology.neighbors(node) if n not in assigned
            }
    return RegionMap(
        [
            RegionSpec(f"{prefix}{i}", frozenset(nodes))
            for i, nodes in enumerate(members)
        ]
    )


def _hop_distances(
    topology: MeshTopology, names: list[str]
) -> dict[str, dict[str, int]]:
    """All-pairs hop counts via BFS from every node (small meshes)."""
    adjacency = {name: sorted(topology.neighbors(name)) for name in names}
    distances: dict[str, dict[str, int]] = {}
    for source in names:
        dist = {source: 0}
        queue = [source]
        while queue:
            current = queue.pop(0)
            for neighbor in adjacency[current]:
                if neighbor not in dist:
                    dist[neighbor] = dist[current] + 1
                    queue.append(neighbor)
        distances[source] = dist
    return distances


# -- claims and handoffs -------------------------------------------------------


@dataclass(frozen=True)
class RegionClaim:
    """One region-local migration claim, en route to the arbiter."""

    time: float
    epoch: int
    region: str
    app: str
    component: str
    node: str
    severity: float


@dataclass
class HandoffRequest:
    """A migration whose target lies outside the source region.

    The record walks the two-phase protocol:

    ``requested`` → ``released`` → ``admitted`` → ``committed``

    with ``denied`` (the arbiter's claim ordering gave the target to a
    higher-priority claimant) and ``aborted`` (the destination could not
    admit — node down, ledger full, or the pod moved meanwhile) as the
    failure exits.  The single ledger mutation is the atomic
    ``Orchestrator.migrate`` at admit time, so the cluster ledger is
    clean in every phase.
    """

    epoch: int
    source_region: str
    target_region: str
    app: str
    component: str
    source_node: str
    target_node: str
    severity: float
    requested_at: float
    phase: str = "requested"
    released_at: Optional[float] = None
    admitted_at: Optional[float] = None
    completed_at: Optional[float] = None
    #: Migration reason passed through to the orchestrator's restart
    #: record ("cross-region handoff", or "crash recovery" when the
    #: recovery coordinator escalates across regions).
    reason: str = "cross-region handoff"
    #: Why a denied/aborted handoff failed.
    note: str = ""
    request_event: Optional[int] = None
    release_event: Optional[int] = None

    @property
    def latency_s(self) -> Optional[float]:
        """Request-to-commit latency (None until committed)."""
        if self.phase != "committed" or self.completed_at is None:
            return None
        return self.completed_at - self.requested_at


class RegionController:
    """One region's control-plane runtime.

    Presents the same claims-board interface controllers use with the
    legacy :class:`~repro.core.controlplane.FleetArbiter`
    (``nodes_claimed_by_others`` / ``claim`` / ``record_conflict``), but
    backed by an *eventually consistent* view: the region's own claims
    this round plus the arbiter's published board from the previous
    round.  Other regions' in-flight claims are invisible until the
    arbiter resolves them — that is the consistency the fleet trades
    for lock-free regional autonomy.
    """

    def __init__(
        self,
        spec: RegionSpec,
        monitor: "NetMonitor",
        *,
        region_map: Optional[RegionMap] = None,
        tracer: Optional[TracerBase] = None,
    ) -> None:
        self.spec = spec
        self.monitor = monitor
        self.region_map = region_map
        self.tracer = resolve_tracer(tracer)
        self.epoch = 0
        #: node -> app, this region's claims in the current round.
        self._local_claims: dict[str, str] = {}
        #: node -> (region, app), other regions' published claims
        #: (one round stale — the eventual-consistency window).
        self._stale_claims: dict[str, tuple[str, str]] = {}
        self._batch: list[RegionClaim] = []
        self._conflicts: list[tuple] = []
        self._handoff_queue: list[HandoffRequest] = []
        self._pending_handoffs: set[tuple[str, str]] = set()
        self._acting_app: Optional[str] = None
        self._acting_severity: float = 0.0
        self._acting_component: dict[str, str] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def nodes(self) -> frozenset[str]:
        return self.spec.nodes

    # -- round lifecycle ---------------------------------------------------

    def begin_round(
        self, epoch: int, published: dict[str, tuple[str, str]]
    ) -> None:
        """Start a fleet round: adopt the arbiter's (stale) board.

        ``published`` maps node -> (region, app) for claims the arbiter
        resolved last round; entries from *this* region are dropped —
        the region has fresher local knowledge of its own claims.
        """
        self.epoch = epoch
        self._local_claims = {}
        self._stale_claims = {
            node: owner
            for node, owner in published.items()
            if owner[0] != self.name
        }
        self._batch = []
        self._conflicts = []

    def set_acting_context(self, app: str, severity: float) -> None:
        """Stamp subsequent claims with the acting tenant's severity."""
        self._acting_app = app
        self._acting_severity = severity

    def clear_acting_context(self) -> None:
        self._acting_app = None
        self._acting_severity = 0.0

    def drain_batch(self) -> list[RegionClaim]:
        """The round's claim batch, for async submission to the arbiter."""
        batch, self._batch = self._batch, []
        return batch

    def drain_conflicts(self) -> list[tuple]:
        conflicts, self._conflicts = self._conflicts, []
        return conflicts

    # -- claims-board interface (duck-typed FleetArbiter) ------------------

    def nodes_claimed_by_others(self, app: str) -> set[str]:
        """Nodes this tenant must select around: the region's own claims
        by other apps, plus last round's published cross-region claims."""
        local = {
            node
            for node, owner in self._local_claims.items()
            if owner != app
        }
        stale = {
            node
            for node, (_, owner_app) in self._stale_claims.items()
            if owner_app != app
        }
        return local | stale

    def claim(self, time: float, app: str, component: str, node: str) -> None:
        self._local_claims[node] = app
        severity = (
            self._acting_severity if app == self._acting_app else 0.0
        )
        self._batch.append(
            RegionClaim(
                time=time,
                epoch=self.epoch,
                region=self.name,
                app=app,
                component=component,
                node=node,
                severity=severity,
            )
        )

    def record_conflict(
        self,
        time: float,
        app: str,
        component: str,
        preferred: str,
        granted: Optional[str],
    ) -> None:
        self._conflicts.append((time, app, component, preferred, granted))

    # -- cross-region handoffs ---------------------------------------------

    def has_pending_handoff(self, app: str, component: str) -> bool:
        return (app, component) in self._pending_handoffs

    def queue_handoff(
        self,
        *,
        time: float,
        app: str,
        component: str,
        source_node: str,
        target_node: str,
        severity: float,
        cause: Optional[int] = None,
        reason: str = "cross-region handoff",
        enqueue: bool = True,
    ) -> HandoffRequest:
        """Record a cross-region migration wish for the fleet broker.

        ``enqueue=False`` keeps the request out of the round queue for
        callers that broker it immediately (crash recovery does not
        wait for the next fleet round).
        """
        target_region = (
            self.region_map.region_of(target_node)
            if self.region_map is not None
            else ""
        )
        request = HandoffRequest(
            epoch=self.epoch,
            source_region=self.name,
            target_region=target_region,
            app=app,
            component=component,
            source_node=source_node,
            target_node=target_node,
            severity=severity,
            requested_at=time,
            reason=reason,
        )
        if self.tracer.enabled:
            request.request_event = self.tracer.emit(
                "handoff.requested",
                time,
                app=app,
                cause=cause,
                component=component,
                source_region=self.name,
                target_region=target_region,
                source_node=source_node,
                target_node=target_node,
                severity=severity,
            )
        if enqueue:
            self._handoff_queue.append(request)
        self._pending_handoffs.add((app, component))
        return request

    @property
    def queued_handoffs(self) -> int:
        return len(self._handoff_queue)

    def drain_handoffs(self) -> list[HandoffRequest]:
        queue, self._handoff_queue = self._handoff_queue, []
        return queue

    def handoff_settled(self, request: HandoffRequest) -> None:
        """The broker reached a terminal phase; the component may try
        again (locally or via a fresh handoff) next round."""
        self._pending_handoffs.discard((request.app, request.component))

    # -- live status -------------------------------------------------------

    def health(self, down_nodes: Iterable[str]) -> dict:
        """This region's block of the status plane's ``status.json``:
        degraded whenever any owned node is down."""
        down = sorted(set(self.nodes) & set(down_nodes))
        return {
            "name": self.name,
            "health": "degraded" if down else "ok",
            "nodes": sorted(self.nodes),
            "down_nodes": down,
            "epoch": self.epoch,
            "pending_handoffs": len(self._pending_handoffs),
        }


@dataclass
class RegionRoundStats:
    """Per-region accounting for one fleet round (scalability reports)."""

    region: str
    epoch: int
    tenants: int = 0
    decision_seconds: float = 0.0
    claims: int = 0
    handoffs_requested: int = 0
    max_severity: float = 0.0
