"""Placement explanations: why did BASS put each component there?

Operators of a community mesh are volunteers (§3.1); a scheduler they
cannot interrogate is a scheduler they will not trust.
:func:`explain_placement` re-runs the scheduling pipeline with full
bookkeeping and renders a human-readable rationale: the heuristic's
component order, the node ranking, each component's landing spot, and
every application edge's fate (loopback vs which wireless path, and
whether that path can carry the annotated requirement).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional

from ..cluster.orchestrator import ClusterState
from ..net.netem import NetworkEmulator
from .dag import ComponentDAG
from .ordering import order_components
from .placement import PlacementEngine, rank_nodes


@dataclass(frozen=True)
class EdgeFate:
    """What happens to one application edge under a placement."""

    src: str
    dst: str
    required_mbps: float
    colocated: bool
    path: tuple[str, ...] = ()
    path_capacity_mbps: Optional[float] = None

    @property
    def satisfied(self) -> bool:
        """Whether the path can carry the requirement (loopback always can)."""
        if self.colocated:
            return True
        if self.path_capacity_mbps is None:
            return True
        return self.path_capacity_mbps >= self.required_mbps


@dataclass(frozen=True)
class PlacementExplanation:
    """The full rationale behind one scheduling decision."""

    heuristic: str
    order: tuple[str, ...]
    node_ranking: tuple[str, ...]
    assignments: dict[str, str]
    edges: tuple[EdgeFate, ...] = field(default_factory=tuple)

    @property
    def colocated_fraction(self) -> float:
        """Fraction of annotated bandwidth kept on loopback."""
        total = sum(e.required_mbps for e in self.edges)
        if total <= 0:
            return 1.0
        kept = sum(e.required_mbps for e in self.edges if e.colocated)
        return kept / total

    @property
    def unsatisfied_edges(self) -> list[EdgeFate]:
        return [e for e in self.edges if not e.satisfied]

    def render(self) -> str:
        """A terminal-friendly report."""
        lines = [
            f"heuristic: {self.heuristic}",
            f"packing order: {' -> '.join(self.order)}",
            f"node ranking: {' > '.join(self.node_ranking)}",
            "placement:",
        ]
        by_node: dict[str, list[str]] = {}
        for component, node in self.assignments.items():
            by_node.setdefault(node, []).append(component)
        for node in self.node_ranking:
            if node in by_node:
                lines.append(f"  {node}: {', '.join(by_node[node])}")
        lines.append("edges:")
        for edge in self.edges:
            if edge.colocated:
                lines.append(
                    f"  {edge.src} -> {edge.dst} "
                    f"({edge.required_mbps:g} Mbps): loopback"
                )
            else:
                capacity = (
                    f"{edge.path_capacity_mbps:g} Mbps path"
                    if edge.path_capacity_mbps is not None
                    else "capacity unknown"
                )
                marker = "" if edge.satisfied else "  !! UNDER-PROVISIONED"
                lines.append(
                    f"  {edge.src} -> {edge.dst} "
                    f"({edge.required_mbps:g} Mbps): via "
                    f"{' - '.join(edge.path)} ({capacity}){marker}"
                )
        lines.append(
            f"bandwidth kept on loopback: {self.colocated_fraction:.0%}"
        )
        return "\n".join(lines)


def explain_placement(
    dag: ComponentDAG,
    cluster: ClusterState,
    netem: Optional[NetworkEmulator] = None,
    *,
    heuristic: str = "longest_path",
    headroom_fraction: float = 0.0,
) -> PlacementExplanation:
    """Run the BASS scheduling pipeline and explain its decisions.

    The provided ``cluster`` is not mutated — placement is simulated on
    a deep copy, so this is safe to call against a live ledger (e.g. to
    preview where a new application *would* land).
    """
    order = order_components(dag, heuristic)
    shadow = copy.deepcopy(cluster)
    ranking = rank_nodes(shadow, netem)
    engine = PlacementEngine(
        shadow, netem, headroom_fraction=headroom_fraction
    )
    assignments = engine.place(dag.to_pods(), order)

    edges: list[EdgeFate] = []
    for src, dst, required in dag.edges():
        src_node, dst_node = assignments[src], assignments[dst]
        if src_node == dst_node:
            edges.append(
                EdgeFate(
                    src=src, dst=dst, required_mbps=required, colocated=True
                )
            )
            continue
        path: tuple[str, ...] = (src_node, dst_node)
        capacity = None
        if netem is not None:
            path = tuple(netem.router.traceroute(src_node, dst_node))
            capacity = netem.path_capacity(src_node, dst_node)
        edges.append(
            EdgeFate(
                src=src,
                dst=dst,
                required_mbps=required,
                colocated=False,
                path=path,
                path_capacity_mbps=capacity,
            )
        )
    return PlacementExplanation(
        heuristic=heuristic,
        order=tuple(order),
        node_ranking=tuple(ranking),
        assignments=assignments,
        edges=tuple(edges),
    )
