"""Unit tests for mesh routing."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.mesh.node import MeshNode
from repro.mesh.routing import Router
from repro.mesh.topology import MeshTopology, citylab_subset, line_topology


def diamond() -> MeshTopology:
    """a - b - d and a - c - d, with b-path links fatter."""
    topo = MeshTopology()
    for name in "abcd":
        topo.add_node(MeshNode(name))
    topo.add_link("a", "b", capacity_mbps=10.0)
    topo.add_link("b", "d", capacity_mbps=8.0)
    topo.add_link("a", "c", capacity_mbps=3.0)
    topo.add_link("c", "d", capacity_mbps=3.0)
    return topo


class TestTraceroute:
    def test_direct_route(self):
        router = Router(line_topology([10.0]))
        assert router.traceroute("node1", "node2") == ("node1", "node2")

    def test_multi_hop_route(self):
        router = Router(line_topology([10.0, 10.0]))
        assert router.traceroute("node1", "node3") == (
            "node1",
            "node2",
            "node3",
        )

    def test_same_node(self):
        router = Router(line_topology([10.0]))
        assert router.traceroute("node1", "node1") == ("node1",)

    def test_lexicographic_tie_break(self):
        router = Router(diamond())
        # Both a-b-d and a-c-d are two hops; 'b' wins deterministically.
        assert router.traceroute("a", "d") == ("a", "b", "d")

    def test_unknown_node_raises(self):
        router = Router(line_topology([10.0]))
        with pytest.raises(TopologyError):
            router.traceroute("node1", "ghost")

    def test_partition_raises(self):
        topo = line_topology([10.0])
        topo.add_node(MeshNode("island"))
        router = Router(topo)
        with pytest.raises(RoutingError):
            router.traceroute("node1", "island")

    def test_cache_invalidates_on_topology_change(self):
        topo = diamond()
        router = Router(topo)
        assert router.traceroute("a", "d") == ("a", "b", "d")
        # Adding a link bumps the topology version; the router notices
        # and reconverges (as a real mesh protocol would) on next query.
        topo.add_link("a", "d", capacity_mbps=1.0)
        assert router.traceroute("a", "d") == ("a", "d")

    def test_explicit_invalidate_still_works(self):
        topo = diamond()
        router = Router(topo)
        assert router.traceroute("a", "d") == ("a", "b", "d")
        router.invalidate()
        assert router.traceroute("a", "d") == ("a", "b", "d")


class TestPathQueries:
    def test_hop_count(self):
        router = Router(line_topology([10.0, 10.0]))
        assert router.hop_count("node1", "node3") == 2
        assert router.hop_count("node1", "node1") == 0

    def test_bottleneck_bandwidth_is_min_along_path(self):
        router = Router(line_topology([10.0, 4.0]))
        assert router.bottleneck_bandwidth("node1", "node3", 0.0) == 4.0

    def test_bottleneck_same_node_is_infinite(self):
        router = Router(line_topology([10.0]))
        assert router.bottleneck_bandwidth("node1", "node1", 0.0) == float(
            "inf"
        )

    def test_bottleneck_respects_direction_of_shaping(self):
        topo = line_topology([10.0])
        topo.link("node1", "node2").set_rate_limit(2.0, src="node1", dst="node2")
        router = Router(topo)
        assert router.bottleneck_bandwidth("node1", "node2", 0.0) == 2.0
        assert router.bottleneck_bandwidth("node2", "node1", 0.0) == 10.0

    def test_path_links_in_order(self):
        router = Router(line_topology([10.0, 4.0]))
        links = router.path_links("node1", "node3")
        assert [link.id for link in links] == [
            ("node1", "node2"),
            ("node2", "node3"),
        ]

    def test_path_latency_sums_hops(self):
        topo = line_topology([10.0, 10.0])
        router = Router(topo)
        per_hop = topo.link("node1", "node2").latency_ms
        assert router.path_latency_ms("node1", "node3") == pytest.approx(
            2 * per_hop
        )

    def test_citylab_routes_avoid_control_node(self):
        router = Router(citylab_subset())
        for src in ("node2", "node3", "node4"):
            path = router.traceroute(src, "node1")
            assert "node0" not in path


class TestPathCaching:
    def test_traceroute_returns_shared_immutable_tuple(self):
        router = Router(line_topology([10.0, 10.0]))
        first = router.traceroute("node1", "node3")
        second = router.traceroute("node1", "node3")
        assert isinstance(first, tuple)
        assert first is second  # cached object, no per-call copy

    def test_self_route_is_cached_tuple(self):
        router = Router(line_topology([10.0]))
        assert router.traceroute("node1", "node1") is router.traceroute(
            "node1", "node1"
        )

    def test_path_link_keys_match_traceroute(self):
        router = Router(line_topology([10.0, 10.0]))
        links = router.path_link_keys("node1", "node3")
        assert links == (("node1", "node2"), ("node2", "node3"))
        assert router.path_link_keys("node1", "node3") is links
        assert router.path_link_keys("node1", "node1") == ()

    def test_caches_drop_on_topology_version_bump(self):
        topo = diamond()
        topo.add_node(MeshNode("e"))
        topo.add_link("c", "e", capacity_mbps=3.0)
        router = Router(topo)
        assert router.traceroute("a", "e") == ("a", "c", "e")
        assert router.path_link_keys("a", "e") == (("a", "c"), ("c", "e"))
        topo.add_link("a", "e", capacity_mbps=3.0)
        assert router.traceroute("a", "e") == ("a", "e")
        assert router.path_link_keys("a", "e") == (("a", "e"),)

    def test_invalidate_clears_link_cache_too(self):
        router = Router(line_topology([10.0]))
        router.path_link_keys("node1", "node2")
        router.invalidate()
        assert router._path_cache == {}
        assert router._link_cache == {}
