"""The network emulator: traces + flows + fairness + queues on one clock.

:class:`NetworkEmulator` is the substrate equivalent of the paper's
CloudLab emulation (§6.3): link capacities follow attached bandwidth
traces (or ``tc``-style rate limits), application traffic is registered
as fluid flows, and every tick the emulator

1. reads each directed link's instantaneous capacity from the topology,
2. recomputes the demand-bounded max-min fair allocation,
3. advances the per-link fluid queues (overload → delay → loss), and
4. accumulates traffic accounting per tag (app vs probe overhead).

Everything the rest of the system observes about the network — achieved
rates, goodput, available headroom, path delay, loss — is a query
against this object.

Structure-of-arrays core
------------------------

The tick hot path runs over flat NumPy arrays keyed by stable integer
ids, with the object API kept as a thin view:

* **Links** get a position (``_link_index``) in enumeration order at
  construction; ``_cap_values[i]`` is directed link *i*'s instantaneous
  capacity.  The capacity scan groups traced links by their trace's
  time grid: one ``index_and_expiry`` lookup per grid per segment
  replaces one trace lookup per link per tick, and between segment
  boundaries a group is skipped entirely.  ``_cap_epoch`` counts scans
  that changed at least one capacity, so the allocation fingerprint is
  an O(1) triple ``(topology version, flow revision, capacity epoch)``
  instead of an O(links) tuple rebuild.
* **Queues** live in one :class:`~repro.net.queues.QueueArrays`; the
  per-link :class:`~repro.net.queues.ArrayLinkQueue` objects handed out
  by :meth:`queue` are property-backed views over its rows, and the
  whole fleet advances in one vectorized update per tick.
* **Flows** mirror into a :class:`~repro.net.flows.FlowArrays`
  (rebuilt only when ``_flows_rev`` moves): per-link offered load and
  per-tag accounting are ``bincount`` calls that add the same floats in
  the same order as the scalar loops they replaced.
* **Allocations** come from a retained
  :class:`~repro.net.fairness.IncrementalMaxMin`, which re-runs
  water-filling only over the connected components whose capacities
  moved since the previous solve — bit-identical to a from-scratch
  solve.

Invalidation rules: the scan structure rebuilds when the topology
version or the process-wide ``Link.shaping_rev`` moves; flow arrays
rebuild when ``_flows_rev`` moves; the incremental solver falls back to
a full solve whenever ``(topology version, flows_rev)`` moves.  None of
the derived structures are serialized — a restored emulator rebuilds
them and, because a rebuild re-reads the same values, resumes with the
same capacity epoch and byte-identical behaviour.
"""

from __future__ import annotations

import time as _time
from typing import Optional

import numpy as np

from ..errors import RoutingError, SimulationError, TopologyError
from ..mesh.link import Link
from ..mesh.routing import Router
from ..mesh.topology import MeshTopology
from ..sim.engine import Engine
from .fairness import (
    FlowDemand,
    IncrementalMaxMin,
    LinkKey,
    max_min_allocation,
)
from .flows import Flow, FlowArrays
from .queues import ArrayLinkQueue, LinkQueue, QueueArrays

#: Phase keys of the per-tick wall-time accounting, in tick order.
TICK_PHASES = ("capacity_scan", "bookkeeping", "solve")


class _TraceGroup:
    """Directed links whose traces share one time grid.

    All member traces agree on sample times, replay mode and period, so
    a single ``index_and_expiry`` on the representative trace gives the
    sample index for every member; the group's capacities come from one
    column gather of the stacked values matrix.  Until ``expiry`` the
    group's capacities cannot change and the scan skips it.
    """

    __slots__ = ("rows", "values", "limits", "trace", "expiry")

    def __init__(self, rows, values, limits, trace) -> None:
        self.rows = rows
        self.values = values
        self.limits = limits
        self.trace = trace
        self.expiry = float("-inf")


class NetworkEmulator:
    """Fluid network emulation over a mesh topology.

    Args:
        topology: the mesh whose links carry the traffic.
        engine: simulation engine providing the clock; a fresh one is
            created if omitted.
        router: route computation; defaults to min-hop over ``topology``.
        tick_s: fluid-model step (1 s matches the paper's trace rate).
        buffer_mbit: per-direction link buffer size.

    Example:
        >>> from repro.mesh import line_topology
        >>> topo = line_topology([10.0])
        >>> emu = NetworkEmulator(topo)
        >>> _ = emu.add_flow("f1", "node1", "node2", demand_mbps=4.0)
        >>> emu.recompute()
        >>> emu.flow("f1").allocated_mbps
        4.0
    """

    def __init__(
        self,
        topology: MeshTopology,
        *,
        engine: Optional[Engine] = None,
        router: Optional[Router] = None,
        tick_s: float = 1.0,
        buffer_mbit: float = 25.0,
    ) -> None:
        if tick_s <= 0:
            raise SimulationError("tick_s must be positive")
        self.topology = topology
        self.engine = engine if engine is not None else Engine()
        self.router = router if router is not None else Router(topology)
        self.tick_s = tick_s
        self._flows: dict[str, Flow] = {}
        #: Stable directed-link ordering: position in these arrays is a
        #: link's id for the life of the emulator (links are never
        #: removed from a topology; up/down is a capacity of 0).
        self._link_keys: list[LinkKey] = [
            (src, dst) for src, dst, _ in topology.iter_directed_links()
        ]
        self._link_index: dict[LinkKey, int] = {
            key: i for i, key in enumerate(self._link_keys)
        }
        self._cap_values = np.zeros(len(self._link_keys), dtype=float)
        #: Bumped by every capacity scan that changed at least one
        #: entry of ``_cap_values`` — the O(1) stand-in for the
        #: capacity vector in the allocation fingerprint.
        self._cap_epoch = 0
        #: ``(topology.version, Link.shaping_rev)`` the scan structure
        #: was built against; None forces a rebuild.
        self._scan_rev: Optional[tuple[int, int]] = None
        self._scan_groups: list[_TraceGroup] = []
        self._queue_arrays = QueueArrays(
            np.full(len(self._link_keys), float(buffer_mbit))
        )
        self._queues: dict[LinkKey, LinkQueue] = {
            key: ArrayLinkQueue(self._queue_arrays, i)
            for i, key in enumerate(self._link_keys)
        }
        self._offered_mbit_by_tag: dict[str, float] = {}
        self._ticker = None
        self._dirty = True
        #: Reverse index: directed link -> ordered set of flow ids that
        #: traverse it (an insertion-ordered dict used as a set, so
        #: per-link sums visit flows in registration order and stay
        #: byte-identical with a scan over ``self._flows``).
        self._flows_by_link: dict[LinkKey, dict[str, None]] = {}
        #: Bumped whenever the flow set changes shape (add/remove,
        #: demand update, reroute) — one third of the allocation
        #: fingerprint alongside the topology version and the capacity
        #: epoch.
        self._flows_rev = 0
        self._alloc_fingerprint: Optional[tuple] = None
        #: FlowDemand list reused across solves while the flow set is
        #: unchanged (keyed by ``_flows_rev``) — rebuilding it every
        #: tick is pure allocation churn.
        self._demands_cache: Optional[tuple[int, list[FlowDemand]]] = None
        #: FlowArrays mirror, same keying.
        self._flow_arrays: Optional[tuple[int, FlowArrays]] = None
        self._incremental = IncrementalMaxMin()
        #: Cumulative wall time per tick phase and the tick count —
        #: diagnostics only (surfaced via /metrics and the profiler,
        #: never written into run summaries or traces by default).
        self._phase_s: dict[str, float] = dict.fromkeys(TICK_PHASES, 0.0)
        self._phase_ticks = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic fluid-model tick on the engine."""
        if self._ticker is None:
            self._ticker = self.engine.every(self.tick_s, self.tick)

    def stop(self) -> None:
        if self._ticker is not None:
            self._ticker.stop()
            self._ticker = None

    @property
    def now(self) -> float:
        return self.engine.now

    # -- flow management --------------------------------------------------

    def add_flow(
        self,
        flow_id: str,
        src: str,
        dst: str,
        demand_mbps: float,
        *,
        tag: str = "app",
    ) -> Flow:
        """Register a fluid flow; its route is fixed until rerouted."""
        if flow_id in self._flows:
            raise SimulationError(f"duplicate flow id {flow_id!r}")
        if demand_mbps < 0:
            raise SimulationError("demand_mbps must be >= 0")
        path = self.router.traceroute(src, dst)
        links = self.router.path_link_keys(src, dst)
        flow = Flow(
            flow_id=flow_id,
            src=src,
            dst=dst,
            demand_mbps=demand_mbps,
            path=path,
            links=links,
            tag=tag,
        )
        self._flows[flow_id] = flow
        self._index_flow(flow)
        self._flows_rev += 1
        self._dirty = True
        return flow

    def remove_flow(self, flow_id: str) -> None:
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            self._unindex_flow(flow)
            self._flows_rev += 1
            self._dirty = True

    def _index_flow(self, flow: Flow) -> None:
        for key in flow.links:
            self._flows_by_link.setdefault(key, {})[flow.flow_id] = None

    def _unindex_flow(self, flow: Flow) -> None:
        for key in flow.links:
            members = self._flows_by_link.get(key)
            if members is not None:
                members.pop(flow.flow_id, None)
                if not members:
                    del self._flows_by_link[key]

    def has_flow(self, flow_id: str) -> bool:
        return flow_id in self._flows

    def flow(self, flow_id: str) -> Flow:
        try:
            return self._flows[flow_id]
        except KeyError:
            raise SimulationError(f"unknown flow {flow_id!r}") from None

    @property
    def flows(self) -> list[Flow]:
        return list(self._flows.values())

    def set_demand(self, flow_id: str, demand_mbps: float) -> None:
        if demand_mbps < 0:
            raise SimulationError("demand_mbps must be >= 0")
        self.flow(flow_id).demand_mbps = demand_mbps
        self._flows_rev += 1
        self._dirty = True

    def reroute_flow(self, flow_id: str, src: str, dst: str) -> Flow:
        """Move a flow's endpoints (after a component migration)."""
        old = self.flow(flow_id)
        self.remove_flow(flow_id)
        return self.add_flow(
            flow_id, src, dst, old.demand_mbps, tag=old.tag
        )

    def on_topology_change(self) -> dict[str, list[str]]:
        """Re-path every flow after nodes or links change state.

        Models the mesh routing protocol reconverging after a failure
        (or a recovery): each flow is re-resolved over the live mesh.
        Flows whose endpoints can no longer reach each other — an
        endpoint crashed, or the mesh partitioned between them — are
        torn down; their traffic simply stops.

        Returns:
            ``{"rerouted": [...], "removed": [...]}`` flow ids, for
            callers (the fault injector) that want to trace the impact.
        """
        rerouted: list[str] = []
        removed: list[str] = []
        for fid, flow in list(self._flows.items()):
            try:
                path = self.router.traceroute(flow.src, flow.dst)
            except RoutingError:
                del self._flows[fid]
                self._unindex_flow(flow)
                removed.append(fid)
                self._flows_rev += 1
                self._dirty = True
                continue
            if path != flow.path:
                self._unindex_flow(flow)
                flow.path = path
                flow.links = self.router.path_link_keys(flow.src, flow.dst)
                self._index_flow(flow)
                rerouted.append(fid)
                self._flows_rev += 1
                self._dirty = True
        if rerouted:
            # Re-establish registration order in the per-link sets a
            # reroute appended to, so per-link sums keep visiting flows
            # in ``self._flows`` order (byte-identical accounting).
            order = {fid: i for i, fid in enumerate(self._flows)}
            affected: set[LinkKey] = set()
            for fid in rerouted:
                affected.update(self._flows[fid].links)
            for key in affected:
                members = self._flows_by_link.get(key)
                if members is not None and len(members) > 1:
                    self._flows_by_link[key] = dict.fromkeys(
                        sorted(members, key=order.__getitem__)
                    )
        return {"rerouted": rerouted, "removed": removed}

    # -- capacity scan ----------------------------------------------------

    def _rebuild_scan(self) -> bool:
        """Rebuild the grouped capacity-scan structure from the mesh.

        Called whenever the topology version or the process-wide link
        shaping revision moved.  Static capacities (no trace, or the
        link is down) are written immediately; traced links are grouped
        by time grid for the per-tick scan.  Returns whether any static
        capacity changed.
        """
        static_rows: list[int] = []
        static_vals: list[float] = []
        grouped: dict[tuple, list] = {}
        for src, dst, link in self.topology.iter_directed_links():
            try:
                row = self._link_index[(src, dst)]
            except KeyError:
                raise TopologyError(
                    f"link {src}->{dst} appeared after emulator "
                    "construction; links must exist when the emulator "
                    "is built"
                ) from None
            if not link.up:
                static_rows.append(row)
                static_vals.append(0.0)
                continue
            base, trace, limit = link.direction_profile(src, dst)
            if trace is None:
                static_rows.append(row)
                static_vals.append(base if limit is None else min(base, limit))
                continue
            entry = grouped.get(trace.grid_key())
            if entry is None:
                entry = grouped[trace.grid_key()] = [[], [], [], trace]
            entry[0].append(row)
            entry[1].append(trace.values)
            entry[2].append(float("inf") if limit is None else limit)
        changed = False
        if static_rows:
            rows = np.array(static_rows, dtype=np.intp)
            values = np.array(static_vals, dtype=float)
            if not np.array_equal(self._cap_values[rows], values):
                self._cap_values[rows] = values
                changed = True
        self._scan_groups = [
            _TraceGroup(
                np.array(rows, dtype=np.intp),
                np.array(values, dtype=float),
                np.array(limits, dtype=float),
                trace,
            )
            for rows, values, limits, trace in grouped.values()
        ]
        return changed

    def _scan_capacities(self) -> None:
        """Refresh ``_cap_values`` for the current instant.

        Groups are skipped until their trace segment expires; any group
        (or static rebuild) that actually changed a capacity bumps
        ``_cap_epoch``.
        """
        rev = (self.topology.version, Link.shaping_rev)
        changed = False
        if rev != self._scan_rev:
            changed = self._rebuild_scan()
            self._scan_rev = rev
        t = self.now
        cap = self._cap_values
        for group in self._scan_groups:
            if t < group.expiry:
                continue
            index, group.expiry = group.trace.index_and_expiry(t)
            column = np.minimum(group.values[:, index], group.limits)
            if not np.array_equal(cap[group.rows], column):
                cap[group.rows] = column
                changed = True
        if changed:
            self._cap_epoch += 1

    # -- fluid model ------------------------------------------------------

    def _capacities_now(self) -> dict[LinkKey, float]:
        self._scan_capacities()
        return dict(zip(self._link_keys, self._cap_values.tolist()))

    def capacities_now(self) -> dict[LinkKey, float]:
        """Instantaneous capacity of every directed link (what-if input)."""
        return self._capacities_now()

    def _demands(self) -> list[FlowDemand]:
        cached = self._demands_cache
        if cached is not None and cached[0] == self._flows_rev:
            return cached[1]
        demands = [
            FlowDemand(
                flow_id=fid,
                links=flow.links,
                demand_mbps=flow.demand_mbps,
            )
            for fid, flow in self._flows.items()
        ]
        self._demands_cache = (self._flows_rev, demands)
        return demands

    def _current_flow_arrays(self) -> FlowArrays:
        cached = self._flow_arrays
        if cached is not None and cached[0] == self._flows_rev:
            return cached[1]
        arrays = FlowArrays(self._flows, self._link_index)
        self._flow_arrays = (self._flows_rev, arrays)
        return arrays

    def recompute(self, capacities: Optional[dict[LinkKey, float]] = None) -> None:
        """Recompute the max-min allocation for the current instant.

        Args:
            capacities: an explicit capacity vector for what-if
                analysis; omitted (the normal path), the emulator scans
                the topology and solves incrementally against its own
                capacity arrays.

        The solve is skipped entirely when the allocation fingerprint —
        topology version, flow-set revision, and capacity epoch —
        matches the previous computation: nothing moved, so the rates
        already on the flows are still exact.
        """
        if capacities is None:
            self._scan_capacities()
            self._recompute_arrays()
            return
        # What-if path: solve caller-supplied capacities from scratch.
        # The incremental engine's cached rates no longer match what is
        # written on the flows afterwards, so it must be invalidated —
        # otherwise a later partial re-solve would leave clean
        # components holding what-if values.
        rates = max_min_allocation(self._demands(), capacities)
        for fid, flow in self._flows.items():
            flow.allocated_mbps = rates.get(fid, 0.0)
        self._incremental.invalidate()
        self._alloc_fingerprint = None
        self._dirty = False

    def _recompute_arrays(self) -> None:
        """Refresh flow allocations from the capacity arrays."""
        fingerprint = (
            self.topology.version,
            self._flows_rev,
            self._cap_epoch,
        )
        if fingerprint == self._alloc_fingerprint:
            self._dirty = False
            return
        rates, changed = self._incremental.solve(
            self._demands(),
            self._link_index,
            self._cap_values,
            (self.topology.version, self._flows_rev),
        )
        if changed is None:
            for fid, flow in self._flows.items():
                flow.allocated_mbps = rates.get(fid, 0.0)
        else:
            flows = self._flows
            for fid in changed:
                flows[fid].allocated_mbps = rates[fid]
        self._alloc_fingerprint = fingerprint
        self._dirty = False

    def tick(self) -> None:
        """Advance queues by one step and refresh the allocation."""
        t0 = _time.perf_counter()
        self._scan_capacities()
        t1 = _time.perf_counter()
        arrays = self._current_flow_arrays()
        offered = arrays.offered_mbps(len(self._link_keys))
        arrays.accumulate_offered_by_tag(self.tick_s, self._offered_mbit_by_tag)
        self._queue_arrays.update_all(self.tick_s, offered, self._cap_values)
        t2 = _time.perf_counter()
        self._recompute_arrays()
        t3 = _time.perf_counter()
        phases = self._phase_s
        phases["capacity_scan"] += t1 - t0
        phases["bookkeeping"] += t2 - t1
        phases["solve"] += t3 - t2
        self._phase_ticks += 1
        profiler = self.engine.profiler
        if profiler is not None:
            prefix = "repro.net.netem.NetworkEmulator.tick"
            profiler.record_external(f"{prefix}[capacity_scan]", t1 - t0)
            profiler.record_external(f"{prefix}[bookkeeping]", t2 - t1)
            profiler.record_external(f"{prefix}[solve]", t3 - t2)

    def tick_phase_stats(self) -> dict:
        """Per-phase cumulative tick wall time, for diagnostics.

        Returns ``{"ticks": n, "seconds": {phase: total_s}}``.  Wall
        clock, so never folded into run summaries or traces — only
        surfaced through /metrics gauges, the profiler table, and the
        report's profile section.
        """
        return {"ticks": self._phase_ticks, "seconds": dict(self._phase_s)}

    def solver_stats(self) -> dict[str, int]:
        """Counters from the incremental allocator (deterministic)."""
        inc = self._incremental
        return {
            "full_solves": inc.full_solves,
            "partial_solves": inc.partial_solves,
            "components_resolved": inc.components_resolved,
            "components": inc.component_count,
        }

    def _ensure_fresh(self) -> None:
        if self._dirty:
            self.recompute()

    # -- serialization ----------------------------------------------------

    def __getstate__(self) -> dict:
        """Checkpoint support: derived structures are rebuilt on use.

        The scan groups duplicate trace data, and the flow/demand
        mirrors duplicate the flow table; all are dropped from the
        payload.  ``_cap_values`` and ``_cap_epoch`` *are* kept — a
        restored emulator's first scan rebuilds the groups, re-reads
        the same values, finds nothing changed, and therefore resumes
        with the same allocation fingerprint.  Wall-clock phase
        accounting is reset so snapshot payloads stay deterministic.
        """
        state = self.__dict__.copy()
        state["_scan_rev"] = None
        state["_scan_groups"] = []
        state["_flow_arrays"] = None
        state["_demands_cache"] = None
        state["_phase_s"] = dict.fromkeys(TICK_PHASES, 0.0)
        state["_phase_ticks"] = 0
        return state

    # -- queries ----------------------------------------------------------

    def capacity(self, src: str, dst: str) -> float:
        """Instantaneous directed capacity of the direct link src->dst."""
        return self.topology.capacity(src, dst, self.now)

    def link_allocated(self, src: str, dst: str) -> float:
        """Sum of allocated rates crossing the directed link.

        O(flows on the link) via the reverse index, not O(all flows) —
        this is queried per link, per epoch, by the net-monitor,
        controller, and fault injector.
        """
        self._ensure_fresh()
        members = self._flows_by_link.get((src, dst))
        if not members:
            return 0.0
        flows = self._flows
        return sum(flows[fid].allocated_mbps for fid in members)

    def link_offered(self, src: str, dst: str) -> float:
        """Sum of offered demand crossing the directed link."""
        members = self._flows_by_link.get((src, dst))
        if not members:
            return 0.0
        flows = self._flows
        return sum(flows[fid].demand_mbps for fid in members)

    def link_utilization(self, src: str, dst: str) -> float:
        """Allocated / capacity for the directed link (0 on a dead link)."""
        capacity = self.capacity(src, dst)
        if capacity <= 0:
            return 0.0
        return self.link_allocated(src, dst) / capacity

    def available_bandwidth(self, src: str, dst: str) -> float:
        """Spare capacity on the direct link: capacity minus allocation."""
        return max(0.0, self.capacity(src, dst) - self.link_allocated(src, dst))

    def path_available_bandwidth(self, src: str, dst: str) -> float:
        """Bottleneck spare capacity along the route (inf if co-located)."""
        links = self.router.path_link_keys(src, dst)
        if not links:
            return float("inf")
        return min(self.available_bandwidth(a, b) for a, b in links)

    def path_capacity(self, src: str, dst: str) -> float:
        """Bottleneck total capacity along the route (inf if co-located)."""
        return self.router.bottleneck_bandwidth(src, dst, self.now)

    def queue_delay_s(self, src: str, dst: str) -> float:
        """Current queueing delay on the directed link."""
        key = (src, dst)
        if key not in self._queues:
            raise TopologyError(f"no link {src}->{dst}")
        return self._queues[key].delay_s(self.capacity(src, dst))

    def queue(self, src: str, dst: str) -> LinkQueue:
        key = (src, dst)
        if key not in self._queues:
            raise TopologyError(f"no link {src}->{dst}")
        return self._queues[key]

    def path_delay_s(self, src: str, dst: str) -> float:
        """One-way path delay: propagation plus queueing at each hop."""
        links = self.router.path_link_keys(src, dst)
        total = 0.0
        for a, b in links:
            total += self.topology.link(a, b).latency_ms / 1000.0
            total += self.queue_delay_s(a, b)
        return total

    def path_loss_fraction(self, src: str, dst: str) -> float:
        """Compound loss across the route's queues (last tick)."""
        links = self.router.path_link_keys(src, dst)
        delivered = 1.0
        for key in links:
            delivered *= 1.0 - self._queues[key].last_loss_fraction
        return 1.0 - delivered

    def transfer_time_s(self, src: str, dst: str, megabits: float) -> float:
        """Time to push ``megabits`` at the path's current spare rate.

        Used by request-level latency models for per-RPC payloads.  A
        co-located pair transfers at memory speed (modelled as 0).
        """
        if megabits <= 0:
            return 0.0
        if not self.router.path_link_keys(src, dst):
            return 0.0
        rate = self.path_available_bandwidth(src, dst)
        rate = max(rate, 0.01)  # a starved path still trickles
        return megabits / rate

    def offered_mbit_by_tag(self) -> dict[str, float]:
        """Cumulative link-traversal traffic per tag — overhead accounting
        for §6.3.4 (probe traffic as a share of all traffic)."""
        return dict(self._offered_mbit_by_tag)
