"""Regionalized fleet integration: handoffs, arbitration, parity.

Covers the acceptance claims of the regionalized control plane:

* every cross-region migration travels the two-phase handoff protocol,
* the cluster ledger is clean in *every* handoff phase (the only ledger
  mutation is the single atomic migrate at admit time),
* destination-admit failures abort cleanly and release the reservation,
* a single-region fleet behaves exactly like the legacy control plane.
"""

import pytest

from repro.config import BassConfig, FleetConfig
from repro.core.controlplane import check_cluster_ledger
from repro.core.netmonitor import NetMonitor
from repro.experiments.common import build_env, deploy_app, run_timeline
from repro.experiments.fleet import fleet_handoff, fleet_mesh
from repro.experiments.multi_tenant import (
    SINK,
    StreamPairApp,
    multi_tenant_mesh,
)
from repro.mesh.topology import line_topology, regional_mesh, regional_specs
from repro.net.netem import NetworkEmulator


def build_fleet_env(
    *, nodes_per_region=2, cpu_cores=8.0, handoff_rtt_s=2.0, seed=11
):
    topology = regional_mesh(2, nodes_per_region, cpu_cores=cpu_cores)
    fleet = FleetConfig(
        region_specs=regional_specs(2, nodes_per_region),
        handoff_rtt_s=handoff_rtt_s,
    )
    return build_env(topology, seed=seed, with_traces=False, fleet=fleet)


def deploy_pair(env, name, region, *, demand_mbps=2.0, sink=None):
    app = StreamPairApp(
        name, demand_mbps=demand_mbps, source_node=f"r{region}n1"
    )
    return deploy_app(
        env,
        app,
        "bass-longest-path",
        config=BassConfig().with_migration(
            cooldown_s=10.0, restart_seconds=5.0
        ),
        force_assignments={SINK: sink or f"r{region}n2"},
    )


class TestHandoffPhases:
    def test_ledger_clean_in_every_phase(self):
        """Walk one handoff through requested → released → committed,
        auditing the ledger at each phase boundary."""
        env = build_fleet_env(handoff_rtt_s=2.0)
        cp = env.control_plane
        handle = deploy_pair(env, "tenant00", 0)
        run_timeline(env, 1.0)
        check_cluster_ledger(env.cluster)

        region = cp.region_controller("region0")
        region.begin_round(1, cp.arbiter.published_claims())
        request = region.queue_handoff(
            time=env.netem.now,
            app="tenant00",
            component=SINK,
            source_node="r0n2",
            target_node="r1n2",
            severity=1.5,
            enqueue=False,
        )
        assert request.phase == "requested"
        check_cluster_ledger(env.cluster)

        cp._review_handoff(request)
        assert request.phase == "released"
        # Mid-handoff: the source still holds the pod, the destination
        # has not allocated yet — nothing double-counted.
        assert handle.deployment.node_of(SINK) == "r0n2"
        check_cluster_ledger(env.cluster)
        # The in-flight reservation pins the target on the board.
        held = cp.arbiter.board_claim("r1n2")
        assert held is not None and held.app == "tenant00"

        run_timeline(env, 3.0)  # past the 2 s control RTT
        assert request.phase == "committed"
        assert handle.deployment.node_of(SINK) == "r1n2"
        assert request.latency_s == pytest.approx(2.0)
        check_cluster_ledger(env.cluster)
        # The tenant is re-homed where the majority of its pods live
        # (one pod each side: ties break to region order).
        assert cp.home_region("tenant00") == "region0"

    def test_abort_when_destination_cannot_admit(self):
        """Phase-3 failure: the destination node's ledger is full at
        admit time, so the handoff aborts, releases its reservation,
        and leaves the pod (and the ledger) untouched."""
        env = build_fleet_env(cpu_cores=2.0, handoff_rtt_s=0.0)
        cp = env.control_plane
        handle = deploy_pair(env, "tenant00", 0)
        # Pack the remote target completely: source and sink of the
        # filler both land on r1n2 (2 cores = 2 x 1-core pods).
        filler = StreamPairApp("filler", source_node="r1n2")
        deploy_app(
            env,
            filler,
            "bass-longest-path",
            force_assignments={SINK: "r1n2"},
        )
        run_timeline(env, 1.0)

        region = cp.region_controller("region0")
        region.begin_round(1, cp.arbiter.published_claims())
        request = region.queue_handoff(
            time=env.netem.now,
            app="tenant00",
            component=SINK,
            source_node="r0n2",
            target_node="r1n2",
            severity=2.0,
            enqueue=False,
        )
        granted = cp.broker_recovery_handoff(request)
        assert granted is None
        assert request.phase == "aborted"
        assert "cannot admit" in request.note
        assert handle.deployment.node_of(SINK) == "r0n2"
        # The reservation is released — the board holds no stale pin.
        assert cp.arbiter.board_claim("r1n2") is None
        check_cluster_ledger(env.cluster)
        # The source region may retry next round.
        assert not region.has_pending_handoff("tenant00", SINK)

    def test_denied_when_target_reserved_by_other_tenant(self):
        """Phase-1 failure: the arbiter's board already pins the target
        for another tenant's in-flight handoff."""
        env = build_fleet_env(handoff_rtt_s=5.0)
        cp = env.control_plane
        deploy_pair(env, "tenant00", 0)
        deploy_pair(env, "tenant01", 0, sink="r0n1")
        run_timeline(env, 1.0)

        region = cp.region_controller("region0")
        region.begin_round(1, cp.arbiter.published_claims())
        first = region.queue_handoff(
            time=env.netem.now,
            app="tenant00",
            component=SINK,
            source_node="r0n2",
            target_node="r1n2",
            severity=2.0,
            enqueue=False,
        )
        second = region.queue_handoff(
            time=env.netem.now,
            app="tenant01",
            component=SINK,
            source_node="r0n1",
            target_node="r1n2",
            severity=1.0,
            enqueue=False,
        )
        cp._review_handoff(first)
        assert first.phase == "released"
        cp._review_handoff(second)
        assert second.phase == "denied"
        assert "tenant00" in second.note
        assert cp.arbiter.conflict_count == 1
        check_cluster_ledger(env.cluster)


class TestFleetScenarios:
    def test_forced_handoff_scenario_end_to_end(self):
        """Region 0 is packed and throttled: the only escape is a
        cross-region handoff, and every cross-region migration in the
        run went through the protocol."""
        result = fleet_handoff(tenants=2, duration_s=180.0)
        assert result.committed_handoffs >= 1
        assert result.cross_region_migrations == result.committed_handoffs
        # Two tenants racing one remote node exercise the denial path.
        assert result.handoff_counts.get("denied", 0) >= 1
        assert result.conflict_count >= 1
        # Commit latency is the configured control RTT.
        for latency in result.handoff_latencies:
            assert latency == pytest.approx(2.0)

    def test_steady_state_probes_stay_in_region(self):
        """Without congestion no handoffs happen, tenants stay homed
        round-robin, and per-link probe rate matches the single-region
        baseline (regions do not flood each other)."""
        baseline = fleet_mesh(
            regions=1, tenants=1, nodes_per_region=3, duration_s=120.0
        )
        fleet = fleet_mesh(
            regions=2, tenants=4, nodes_per_region=3, duration_s=120.0
        )
        assert fleet.handoff_counts == {}
        assert fleet.cross_region_migrations == 0
        assert fleet.tenants_by_region == {"region0": 2, "region1": 2}
        assert fleet.probe_events_per_link_hour == pytest.approx(
            baseline.probe_events_per_link_hour, rel=0.2
        )

    def test_partitioner_matches_explicit_specs(self):
        """FleetConfig.regions=N derives the same region boundaries the
        explicit specs describe for the regional mesh."""
        result = fleet_mesh(
            regions=2, tenants=2, duration_s=60.0, use_partitioner=True
        )
        assert sorted(result.tenants_by_region) == ["region0", "region1"]
        assert result.intra_region_links == 6  # 3 per full-mesh triangle


class TestSingleRegionParity:
    def test_one_region_fleet_matches_legacy_control_plane(self):
        """A regionalized fleet with one region must make the decisions
        the legacy (non-regionalized) control plane makes: same
        migrations, same probe totals, same conflicts."""
        kwargs = dict(
            tenants=3, duration_s=180.0, seed=11, throttle_mbps=3.0
        )
        legacy = multi_tenant_mesh(**kwargs)
        fleet = multi_tenant_mesh(fleet=FleetConfig(regions=1), **kwargs)
        assert fleet.migrations_by_app == legacy.migrations_by_app
        assert fleet.conflict_count == legacy.conflict_count
        assert fleet.full_probes == legacy.full_probes
        assert fleet.headroom_probes == legacy.headroom_probes
        assert fleet.probe_events_per_hour == pytest.approx(
            legacy.probe_events_per_hour
        )


class TestRegionScopedHeadroomCache:
    def test_views_of_different_regions_never_alias(self):
        """The headroom cache keys on (region, link): a fresh region
        view must re-probe even when another region's view measured the
        same directed link moments ago."""
        topology = line_topology([10.0])
        netem = NetworkEmulator(topology)
        netem.start()
        fleet_monitor = NetMonitor(netem)
        view_a = fleet_monitor.region_view("a", ["node1", "node2"])
        view_b = fleet_monitor.region_view("b", ["node1", "node2"])

        view_a.headroom_probe("node1", "node2", 1.0, reuse_s=30.0)
        assert view_a.headroom_probe_count == 1
        # Same region, same link, inside the reuse window: cache hit.
        view_a.headroom_probe("node1", "node2", 1.0, reuse_s=30.0)
        assert view_a.headroom_probe_count == 1
        assert view_a.headroom_cache_hits == 1
        # Different region: no aliasing, a fresh probe is injected.
        view_b.headroom_probe("node1", "node2", 1.0, reuse_s=30.0)
        assert view_b.headroom_probe_count == 1
        assert view_b.headroom_cache_hits == 0
