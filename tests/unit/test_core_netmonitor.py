"""Unit tests for the net-monitor: probing and capacity caching."""

import pytest

from repro.config import ProbeConfig
from repro.core.netmonitor import NetMonitor
from repro.errors import TopologyError
from repro.mesh.topology import line_topology
from repro.mesh.traces import BandwidthTrace
from repro.net.netem import NetworkEmulator


def monitor_on(capacities=(10.0,), **probe_kwargs):
    netem = NetworkEmulator(line_topology(list(capacities)))
    return NetMonitor(netem, ProbeConfig(**probe_kwargs)), netem


class TestFullProbe:
    def test_measures_current_capacity(self):
        monitor, _ = monitor_on([10.0])
        result = monitor.full_probe("node1", "node2")
        assert result.capacity_mbps == 10.0
        assert result.kind == "full"

    def test_caches_measurement(self):
        monitor, netem = monitor_on([10.0])
        monitor.full_probe("node1", "node2")
        # Capacity drops, but the cache still serves the old value.
        netem.topology.link("node1", "node2").set_rate_limit(2.0)
        assert monitor.cached_capacity("node1", "node2") == 10.0
        monitor.full_probe("node1", "node2")
        assert monitor.cached_capacity("node1", "node2") == 2.0

    def test_uncached_link_reads_live(self):
        monitor, _ = monitor_on([10.0])
        assert monitor.cached_capacity("node1", "node2") == 10.0

    def test_injects_probe_traffic(self):
        monitor, netem = monitor_on([10.0])
        monitor.full_probe("node1", "node2")
        probes = [f for f in netem.flows if f.tag == "probe"]
        assert len(probes) == 1
        assert probes[0].demand_mbps == 10.0
        # The probe flow is removed after the probe duration.
        netem.engine.run_until(2.0)
        assert not [f for f in netem.flows if f.tag == "probe"]

    def test_probe_all_links_counts(self):
        monitor, _ = monitor_on([10.0, 5.0])
        monitor.probe_all_links()
        assert monitor.full_probe_count == 4  # two links, both directions

    def test_cooldown(self):
        monitor, netem = monitor_on([10.0], full_probe_cooldown_s=60.0)
        monitor.full_probe("node1", "node2")
        assert not monitor.full_probe_allowed("node1", "node2")
        netem.engine.run_until(61.0)
        assert monitor.full_probe_allowed("node1", "node2")

    def test_cache_age(self):
        monitor, netem = monitor_on([10.0])
        assert monitor.cache_age("node1", "node2") == float("inf")
        monitor.full_probe("node1", "node2")
        netem.engine.run_until(30.0)
        assert monitor.cache_age("node1", "node2") == pytest.approx(30.0)

    def test_invalidate_cache(self):
        monitor, netem = monitor_on([10.0])
        monitor.full_probe("node1", "node2")
        netem.topology.link("node1", "node2").set_rate_limit(2.0)
        monitor.invalidate_cache("node1", "node2")
        assert monitor.cached_capacity("node1", "node2") == 2.0


class TestHeadroomProbe:
    def test_ok_when_spare_capacity_exists(self):
        monitor, _ = monitor_on([10.0])
        result = monitor.headroom_probe("node1", "node2", headroom_mbps=2.0)
        assert result.headroom_ok
        assert result.kind == "headroom"

    def test_violated_when_link_busy(self):
        monitor, netem = monitor_on([10.0])
        netem.add_flow("hog", "node1", "node2", 9.5)
        netem.recompute()
        result = monitor.headroom_probe("node1", "node2", headroom_mbps=2.0)
        assert not result.headroom_ok

    def test_probe_rate_bounded_by_fraction_of_cached(self):
        monitor, netem = monitor_on([10.0], headroom_probe_fraction=0.1)
        monitor.headroom_probe("node1", "node2", headroom_mbps=100.0)
        probes = [f for f in netem.flows if f.tag == "probe"]
        assert probes[0].demand_mbps == pytest.approx(1.0)

    def test_counts(self):
        monitor, _ = monitor_on([10.0])
        monitor.headroom_probe("node1", "node2", 1.0)
        monitor.headroom_probe("node1", "node2", 1.0)
        assert monitor.headroom_probe_count == 2


class TestPathViews:
    def test_cached_path_capacity_is_bottleneck(self):
        monitor, _ = monitor_on([10.0, 4.0])
        monitor.probe_all_links()
        assert monitor.cached_path_capacity("node1", "node3") == 4.0

    def test_cached_path_same_node_infinite(self):
        monitor, _ = monitor_on([10.0])
        assert monitor.cached_path_capacity("node1", "node1") == float("inf")

    def test_links_of_path(self):
        monitor, _ = monitor_on([10.0, 4.0])
        assert monitor.links_of_path("node1", "node3") == [
            ("node1", "node2"),
            ("node2", "node3"),
        ]
        assert monitor.links_of_path("node1", "node1") == []

    def test_validate_link(self):
        monitor, _ = monitor_on([10.0])
        monitor.validate_link("node1", "node2")
        with pytest.raises(TopologyError):
            monitor.validate_link("node1", "node3")


class TestPassiveAndOverhead:
    def test_goodput_of_missing_flow_is_one(self):
        monitor, _ = monitor_on([10.0])
        assert monitor.goodput("ghost") == 1.0

    def test_goodput_of_squeezed_flow(self):
        monitor, netem = monitor_on([10.0])
        netem.add_flow("f", "node1", "node2", 20.0)
        netem.recompute()
        assert monitor.goodput("f") == pytest.approx(0.5)

    def test_probe_overhead_fraction(self):
        monitor, netem = monitor_on([10.0])
        netem.add_flow("app", "node1", "node2", 9.0, tag="app")
        netem.start()
        monitor_task = netem.engine.every(
            10.0, lambda: monitor.headroom_probe("node1", "node2", 1.0)
        )
        netem.engine.run_until(100.0)
        fraction = monitor.probe_overhead_fraction()
        assert 0.0 < fraction < 0.2
        monitor_task.stop()

    def test_overhead_zero_without_traffic(self):
        monitor, _ = monitor_on([10.0])
        assert monitor.probe_overhead_fraction() == 0.0
