"""Demand-bounded max-min fair bandwidth allocation.

Implements progressive filling (water-filling): all unsatisfied flows'
rates grow at the same pace; a flow stops growing when it reaches its
demand or when any link on its path saturates.  The result is the unique
max-min fair allocation, which is:

* *feasible* — no link carries more than its capacity,
* *demand-bounded* — no flow exceeds what it asked for,
* *max-min fair* — a flow's rate can only be increased by decreasing
  the rate of a flow with an already-smaller rate.

This is the fluid-level idealization of what per-flow fair queueing (or
long-run TCP) gives competing streams, and is the allocation model the
emulator recomputes whenever demands or capacities change.

Three interchangeable solvers compute the same allocation:

* :func:`max_min_allocation_reference` — the original per-round loop
  that rebuilds the flows-per-link map from scratch every round.  It is
  frozen as the correctness oracle and the baseline for the perf
  harness (``benchmarks/test_perf_emulator.py``).
* the *indexed* solver — maintains the flow<->link incidence counts
  incrementally as flows retire, removing the per-round dict rebuild.
* the *vectorized* solver — the same water-filling rounds over NumPy
  arrays, selected automatically for large instances.

All three are bit-compatible: every floating-point operation of a round
(the uniform increment, the rate and residual-capacity updates, the
retirement tests) is performed with identical IEEE-754 arithmetic in an
equivalent order, so the returned rates are *exactly* equal, not merely
close.  ``tests/unit/test_fairness_equivalence.py`` enforces this over
hundreds of randomized instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import numpy as np

_EPSILON = 1e-9

#: Auto-dispatch thresholds: the vectorized solver wins once the round
#: loop pushes enough work through NumPy to amortize array setup.
#: Calibrated from BENCH_emulator.json's tracked solve times — the
#: log-log power-law fits of the indexed and vectorized solvers cross
#: at ~134 flows (see repro.net.calibration; the guard test
#: tests/unit/test_solver_calibration.py keeps these in sync with a
#: fresh fit of the checked-in data).
_VECTOR_MIN_FLOWS = 134
_VECTOR_MIN_ENTRIES = 536

SOLVERS = ("auto", "reference", "indexed", "vectorized")

LinkKey = tuple[str, str]
"""Directed link identifier: (src node, dst node)."""


@dataclass(frozen=True)
class FlowDemand:
    """A flow's routing and demand, as seen by the allocator.

    Attributes:
        flow_id: caller-chosen identifier.
        links: directed links the flow traverses, in order.  An empty
            sequence means the endpoints are co-located (loopback): the
            flow is granted its full demand.
        demand_mbps: offered load in Mbps.
    """

    flow_id: Hashable
    links: tuple[LinkKey, ...] = field(default_factory=tuple)
    demand_mbps: float = 0.0


def max_min_allocation_reference(
    flows: Sequence[FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> dict[Hashable, float]:
    """The frozen reference water-filling implementation (the oracle).

    Rebuilds the flows-per-link incidence map every round; correct and
    simple, but the rebuild dominates on large instances.  Kept verbatim
    so the optimized solvers can be proven bit-compatible against it and
    the perf harness can measure the speedup honestly.
    """
    rates: dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    remaining = {key: float(cap) for key, cap in capacities.items()}

    active: dict[Hashable, FlowDemand] = {}
    for flow in flows:
        if flow.demand_mbps <= _EPSILON:
            continue
        if not flow.links:
            rates[flow.flow_id] = flow.demand_mbps  # loopback
            continue
        for key in flow.links:
            if key not in remaining:
                raise KeyError(f"flow {flow.flow_id!r} uses unknown link {key}")
        active[flow.flow_id] = flow

    while active:
        flows_on_link: dict[LinkKey, int] = {}
        for flow in active.values():
            for key in flow.links:
                flows_on_link[key] = flows_on_link.get(key, 0) + 1

        # Largest uniform increment every active flow can take.
        delta = min(
            remaining[key] / count for key, count in flows_on_link.items()
        )
        delta = min(
            delta,
            min(
                flow.demand_mbps - rates[fid]
                for fid, flow in active.items()
            ),
        )
        delta = max(delta, 0.0)

        for fid in active:
            rates[fid] += delta
        for key, count in flows_on_link.items():
            remaining[key] -= delta * count

        # Retire satisfied flows, then flows pinned by a saturated link.
        satisfied = [
            fid
            for fid, flow in active.items()
            if rates[fid] >= flow.demand_mbps - _EPSILON
        ]
        for fid in satisfied:
            del active[fid]
        saturated = {
            key
            for key, cap in remaining.items()
            if cap <= _EPSILON and flows_on_link.get(key)
        }
        if saturated:
            pinned = [
                fid
                for fid, flow in active.items()
                if any(key in saturated for key in flow.links)
            ]
            for fid in pinned:
                del active[fid]
        elif not satisfied and delta <= _EPSILON:
            break  # numerical dead-end; all remaining rates stay put

    return rates


def _partition_flows(
    flows: Sequence[FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> tuple[dict[Hashable, float], dict[Hashable, FlowDemand]]:
    """Shared preamble: grant loopbacks, drop zero demands, validate links.

    Returns the initial rates dict and the active flow set, exactly as
    the reference solver's first loop computes them.
    """
    rates: dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    active: dict[Hashable, FlowDemand] = {}
    for flow in flows:
        if flow.demand_mbps <= _EPSILON:
            continue
        if not flow.links:
            rates[flow.flow_id] = flow.demand_mbps  # loopback
            continue
        for key in flow.links:
            if key not in capacities:
                raise KeyError(f"flow {flow.flow_id!r} uses unknown link {key}")
        active[flow.flow_id] = flow
    return rates, active


def _solve_indexed(
    rates: dict[Hashable, float],
    active: dict[Hashable, FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> None:
    """Water-filling with incrementally maintained incidence counts.

    Identical arithmetic to the reference loop; the only change is that
    the flows-per-link counts are decremented as flows retire instead of
    being rebuilt from scratch every round, so a round costs
    O(active links + active flows) rather than O(total path length).
    """
    remaining = {key: float(capacities[key]) for flow in active.values() for key in flow.links}
    counts: dict[LinkKey, int] = {}
    for flow in active.values():
        for key in flow.links:
            counts[key] = counts.get(key, 0) + 1

    while active:
        delta = min(remaining[key] / count for key, count in counts.items())
        delta = min(
            delta,
            min(
                flow.demand_mbps - rates[fid]
                for fid, flow in active.items()
            ),
        )
        delta = max(delta, 0.0)

        for fid in active:
            rates[fid] += delta
        for key, count in counts.items():
            remaining[key] -= delta * count

        satisfied = [
            fid
            for fid, flow in active.items()
            if rates[fid] >= flow.demand_mbps - _EPSILON
        ]
        retired = [active.pop(fid) for fid in satisfied]
        # Saturation is judged against the round-start counts (still
        # including the just-satisfied flows), matching the reference.
        saturated = {
            key for key in counts if remaining[key] <= _EPSILON
        }
        if saturated:
            pinned = [
                fid
                for fid, flow in active.items()
                if any(key in saturated for key in flow.links)
            ]
            retired.extend(active.pop(fid) for fid in pinned)
        elif not satisfied and delta <= _EPSILON:
            break  # numerical dead-end; all remaining rates stay put

        for flow in retired:
            for key in flow.links:
                left = counts[key] - 1
                if left:
                    counts[key] = left
                else:
                    del counts[key]


def _solve_vectorized(
    rates: dict[Hashable, float],
    active: dict[Hashable, FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> None:
    """The same water-filling rounds over NumPy arrays.

    Every scalar operation of the reference round maps to an elementwise
    float64 operation here (same IEEE-754 semantics, no reductions that
    reassociate sums), so results are bit-identical.
    """
    flow_ids = list(active.keys())
    flow_index = {fid: i for i, fid in enumerate(flow_ids)}
    n_flows = len(flow_ids)

    link_index: dict[LinkKey, int] = {}
    entry_flow: list[int] = []
    entry_link: list[int] = []
    for fid, flow in active.items():
        fi = flow_index[fid]
        for key in flow.links:
            li = link_index.get(key)
            if li is None:
                li = link_index[key] = len(link_index)
            entry_flow.append(fi)
            entry_link.append(li)
    n_links = len(link_index)

    ef = np.asarray(entry_flow, dtype=np.intp)
    el = np.asarray(entry_link, dtype=np.intp)
    # Entries are grouped by flow in build order, so each flow's link
    # indices live in one slice — used to retire its incidence in O(path).
    offsets = np.zeros(n_flows + 1, dtype=np.intp)
    np.cumsum(
        [len(active[fid].links) for fid in flow_ids], out=offsets[1:]
    )
    cap = np.empty(n_links, dtype=np.float64)
    for key, li in link_index.items():
        cap[li] = float(capacities[key])
    demand = np.array(
        [active[fid].demand_mbps for fid in flow_ids], dtype=np.float64
    )
    rate = np.zeros(n_flows, dtype=np.float64)
    alive = np.ones(n_flows, dtype=bool)
    counts = np.bincount(el, minlength=n_links)

    while alive.any():
        used = counts > 0
        delta = float((cap[used] / counts[used]).min())
        delta = min(
            delta, float(np.min(demand - rate, where=alive, initial=np.inf))
        )
        delta = max(delta, 0.0)

        np.add(rate, delta, out=rate, where=alive)
        np.subtract(cap, delta * counts, out=cap, where=used)

        satisfied = alive & (rate >= demand - _EPSILON)
        alive &= ~satisfied
        retired = np.flatnonzero(satisfied)
        # Round-start counts (still including just-satisfied flows), as
        # in the reference.
        saturated = used & (cap <= _EPSILON)
        if saturated.any():
            sel = alive[ef] & saturated[el]
            pinned = np.zeros(n_flows, dtype=bool)
            pinned[ef[sel]] = True
            alive &= ~pinned
            retired = np.concatenate([retired, np.flatnonzero(pinned)])
        elif not satisfied.any() and delta <= _EPSILON:
            break  # numerical dead-end; all remaining rates stay put
        for fi in retired:
            # unbuffered: a path listing a link twice decrements twice,
            # matching the reference's per-occurrence incidence counts
            np.subtract.at(counts, el[offsets[fi]:offsets[fi + 1]], 1)

    for i, fid in enumerate(flow_ids):
        rates[fid] = float(rate[i])
    active.clear()


def auto_solver(active_flows: Sequence[FlowDemand]) -> str:
    """The implementation ``solver="auto"`` dispatches to.

    Small instances stay on the indexed solver: below the thresholds the
    vectorized solver's array setup costs more than the whole solve (the
    perf harness's ``n005_f010`` case runs ~4x slower vectorized), so
    auto must never pick it there.  The thresholds are calibrated from
    the perf harness's measurements rather than hand-tuned — see
    :mod:`repro.net.calibration`.  ``active_flows`` is the post-
    partition active set — loopback and zero-demand flows are granted
    before dispatch and never count toward the thresholds.
    """
    entries = sum(len(flow.links) for flow in active_flows)
    return (
        "vectorized"
        if len(active_flows) >= _VECTOR_MIN_FLOWS
        and entries >= _VECTOR_MIN_ENTRIES
        else "indexed"
    )


def max_min_allocation(
    flows: Sequence[FlowDemand],
    capacities: Mapping[LinkKey, float],
    *,
    solver: str = "auto",
) -> dict[Hashable, float]:
    """Compute the demand-bounded max-min fair rates for ``flows``.

    Args:
        flows: flow demands; flows whose paths reference a link absent
            from ``capacities`` raise ``KeyError`` (a wiring bug).
        capacities: directed link capacities in Mbps.
        solver: ``"auto"`` (default) picks the vectorized solver for
            large instances and the indexed solver otherwise;
            ``"reference"``, ``"indexed"`` and ``"vectorized"`` force a
            specific implementation.  All solvers return bit-identical
            allocations.

    Returns:
        Mapping from flow id to allocated rate in Mbps.
    """
    if solver not in SOLVERS:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {SOLVERS}"
        )
    if solver == "reference":
        return max_min_allocation_reference(flows, capacities)

    rates, active = _partition_flows(flows, capacities)
    if not active:
        return rates
    if solver == "auto":
        solver = auto_solver(tuple(active.values()))
    if solver == "vectorized":
        _solve_vectorized(rates, active, capacities)
    else:
        _solve_indexed(rates, active, capacities)
    return rates
