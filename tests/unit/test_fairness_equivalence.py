"""Bit-compatibility of the fast-path allocators against the oracle.

The indexed and vectorized kernels in ``repro.net.fairness`` must return
*exactly* the allocation the oracle computes — not merely close: the
emulator's golden figure benchmarks are pinned byte-for-byte, so any
reassociated float operation would surface as a golden diff.

The canonical semantics are *decomposed*: ``max_min_allocation`` splits
an instance into link-connected components and solves each one
independently, so the oracle for a general instance is
``max_min_allocation(..., solver="reference")`` — the frozen reference
kernel run per component.  On a *single-component* instance the
decomposed solve is additionally bit-identical to the frozen *global*
``max_min_allocation_reference`` (asserted below); multi-component
instances may differ from the global loop at the ulp level because the
global loop interleaves rounds across independent components.

This suite replays hundreds of seeded random instances — including
loopback flows, zero demands, saturated links, and dead (zero-capacity)
links — through all kernels and compares with ``==``, no tolerance.
"""

import numpy as np
import pytest

from repro.net.fairness import (
    _VECTOR_MIN_ENTRIES,
    _VECTOR_MIN_FLOWS,
    FlowDemand,
    _partition_flows,
    auto_solver,
    link_components,
    max_min_allocation,
    max_min_allocation_reference,
)

#: (instances, links, flows, seed base) per size class; 240 instances total.
SIZE_CLASSES = [
    (120, 6, 8, 1000),
    (80, 40, 60, 2000),
    (40, 120, 300, 3000),
]


def random_instance(rng, n_links, n_flows):
    """A seeded random allocation instance with every edge case mixed in."""
    links = [(f"n{i}", f"n{i + 1}") for i in range(n_links)]
    capacities = {}
    for key in links:
        roll = rng.random()
        if roll < 0.08:
            capacities[key] = 0.0  # dead link (crashed endpoint)
        elif roll < 0.16:
            capacities[key] = float(rng.uniform(0.0, 0.5))  # nearly dead
        else:
            capacities[key] = float(rng.uniform(1.0, 100.0))
    flows = []
    for i in range(n_flows):
        roll = rng.random()
        if roll < 0.08:
            path = ()  # loopback: endpoints co-located
        else:
            start = int(rng.integers(0, n_links))
            hops = int(rng.integers(1, min(5, n_links) + 1))
            path = tuple(links[(start + h) % n_links] for h in range(hops))
        if rng.random() < 0.08:
            demand = 0.0
        elif rng.random() < 0.25:
            demand = float(rng.uniform(50.0, 500.0))  # saturating
        else:
            demand = float(rng.uniform(0.1, 20.0))
        flows.append(FlowDemand(flow_id=f"f{i}", links=path, demand_mbps=demand))
    return flows, capacities


@pytest.mark.parametrize(
    "instances,n_links,n_flows,seed_base",
    SIZE_CLASSES,
    ids=["small", "medium", "large"],
)
def test_solvers_bit_identical_on_random_instances(
    instances, n_links, n_flows, seed_base
):
    for case in range(instances):
        rng = np.random.default_rng(seed_base + case)
        flows, capacities = random_instance(rng, n_links, n_flows)
        expected = max_min_allocation(flows, capacities, solver="reference")
        for solver in ("indexed", "vectorized", "auto"):
            got = max_min_allocation(flows, capacities, solver=solver)
            assert got == expected, (
                f"solver={solver} diverged on seed {seed_base + case}"
            )


@pytest.mark.parametrize(
    "instances,n_links,n_flows,seed_base",
    SIZE_CLASSES,
    ids=["small", "medium", "large"],
)
def test_single_component_instances_match_global_reference(
    instances, n_links, n_flows, seed_base
):
    """On one connected component, decomposition is a no-op: every
    kernel (and the decomposed dispatch itself) must equal the frozen
    *global* reference loop bit for bit."""
    checked = 0
    for case in range(instances):
        rng = np.random.default_rng(seed_base + case)
        flows, capacities = random_instance(rng, n_links, n_flows)
        _, active = _partition_flows(flows, capacities)
        if not active or len(link_components(active)) != 1:
            continue
        checked += 1
        expected = max_min_allocation_reference(flows, capacities)
        for solver in ("reference", "indexed", "vectorized", "auto"):
            got = max_min_allocation(flows, capacities, solver=solver)
            assert got == expected, (
                f"solver={solver} diverged on seed {seed_base + case}"
            )
    assert checked > 0, "no single-component instances in this size class"


def test_all_solvers_handle_empty_input():
    for solver in ("reference", "indexed", "vectorized", "auto"):
        assert max_min_allocation([], {}, solver=solver) == {}


def test_all_solvers_grant_loopback_and_zero_demand():
    flows = [
        FlowDemand("loop", (), 7.5),
        FlowDemand("idle", (("a", "b"),), 0.0),
    ]
    capacities = {("a", "b"): 10.0}
    expected = {"loop": 7.5, "idle": 0.0}
    for solver in ("reference", "indexed", "vectorized", "auto"):
        assert max_min_allocation(flows, capacities, solver=solver) == expected


def test_all_solvers_reject_unknown_links():
    flows = [FlowDemand("f", (("a", "ghost"),), 1.0)]
    for solver in ("reference", "indexed", "vectorized", "auto"):
        with pytest.raises(KeyError):
            max_min_allocation(flows, {("a", "b"): 10.0}, solver=solver)


def test_unknown_solver_rejected():
    with pytest.raises(ValueError):
        max_min_allocation([], {}, solver="quantum")


def test_auto_uses_vectorized_on_large_instances():
    """The dispatcher's large-instance branch must agree with the oracle
    on a shape that actually crosses the thresholds."""
    rng = np.random.default_rng(77)
    flows, capacities = random_instance(rng, 100, 400)
    assert max_min_allocation(flows, capacities) == max_min_allocation(
        flows, capacities, solver="reference"
    )


def test_auto_never_picks_vectorized_on_small_perf_instances():
    """The perf harness's smallest tracked case (``n005_f010``: 5 nodes,
    10 flows) runs ~4x *slower* vectorized — array setup dwarfs the
    solve.  The auto-selector must keep instances of that size on the
    indexed solver, whatever the paths look like."""
    rng = np.random.default_rng(505)
    for case in range(50):
        flows, _ = random_instance(rng, 5, 10)
        active = [f for f in flows if f.links and f.demand_mbps > 0]
        assert auto_solver(active) == "indexed", f"case {case}"
        assert auto_solver(flows) == "indexed", f"case {case} (unfiltered)"


def test_auto_solver_threshold_boundary():
    """Vectorized dispatch needs *both* thresholds: enough flows and
    enough path entries."""

    def flows_with(n_flows, links_each):
        return [
            FlowDemand(
                flow_id=f"f{i}",
                links=tuple(
                    (f"n{h}", f"n{h + 1}") for h in range(links_each)
                ),
                demand_mbps=1.0,
            )
            for i in range(n_flows)
        ]

    links_each = _VECTOR_MIN_ENTRIES // _VECTOR_MIN_FLOWS
    at_both = flows_with(_VECTOR_MIN_FLOWS, links_each)
    assert auto_solver(at_both) == "vectorized"
    assert auto_solver(at_both[:-1]) == "indexed"  # one flow short
    assert (
        auto_solver(flows_with(_VECTOR_MIN_FLOWS, links_each - 1))
        == "indexed"  # enough flows, too few entries
    )


def test_dead_links_pin_their_flows_to_zero():
    flows = [
        FlowDemand("dead", (("a", "b"),), 5.0),
        FlowDemand("live", (("b", "c"),), 5.0),
    ]
    capacities = {("a", "b"): 0.0, ("b", "c"): 10.0}
    for solver in ("reference", "indexed", "vectorized", "auto"):
        rates = max_min_allocation(flows, capacities, solver=solver)
        assert rates == {"dead": 0.0, "live": 5.0}


def test_repeated_link_on_a_path_counts_twice_everywhere():
    """A path that crosses the same directed link twice (legal for the
    public API even if shortest paths never do it) must double-count in
    every solver, as the reference does."""
    flows = [
        FlowDemand("twice", (("a", "b"), ("b", "a"), ("a", "b")), 50.0),
        FlowDemand("once", (("a", "b"),), 50.0),
    ]
    capacities = {("a", "b"): 30.0, ("b", "a"): 30.0}
    expected = max_min_allocation_reference(flows, capacities)
    for solver in ("indexed", "vectorized", "auto"):
        assert max_min_allocation(flows, capacities, solver=solver) == expected
