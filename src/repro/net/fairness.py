"""Demand-bounded max-min fair bandwidth allocation.

Implements progressive filling (water-filling): all unsatisfied flows'
rates grow at the same pace; a flow stops growing when it reaches its
demand or when any link on its path saturates.  The result is the unique
max-min fair allocation, which is:

* *feasible* — no link carries more than its capacity,
* *demand-bounded* — no flow exceeds what it asked for,
* *max-min fair* — a flow's rate can only be increased by decreasing
  the rate of a flow with an already-smaller rate.

This is the fluid-level idealization of what per-flow fair queueing (or
long-run TCP) gives competing streams, and is the allocation model the
emulator recomputes whenever demands or capacities change.

Three interchangeable solvers compute the same allocation:

* :func:`max_min_allocation_reference` — the original per-round loop
  that rebuilds the flows-per-link map from scratch every round.  It is
  frozen as the correctness oracle and the baseline for the perf
  harness (``benchmarks/test_perf_emulator.py``).
* the *indexed* solver — maintains the flow<->link incidence counts
  incrementally as flows retire, removing the per-round dict rebuild.
* the *vectorized* solver — the same water-filling rounds over NumPy
  arrays, selected automatically for large instances.

All three are bit-compatible: every floating-point operation of a round
(the uniform increment, the rate and residual-capacity updates, the
retirement tests) is performed with identical IEEE-754 arithmetic in an
equivalent order, so the returned rates are *exactly* equal, not merely
close.  ``tests/unit/test_fairness_equivalence.py`` enforces this over
hundreds of randomized instances.

``max_min_allocation`` solves *per connected component* of the
flow↔link incidence graph: components share no links, so their
allocations are independent, and each component is handed to the kernel
the auto-selector picks for *its* size.  On a single-component instance
this is bit-identical to running a kernel over the whole instance (the
round increments and retirement tests only ever inspect links carried
by active flows).  Decomposition is what makes the incremental path
possible: :class:`IncrementalMaxMin` re-solves only the components
whose link capacities changed since the last allocation and keeps every
clean component's rates verbatim — exactly equal to a from-scratch
solve, because a component's allocation is a pure function of its own
flows and capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, Optional, Sequence

import numpy as np

_EPSILON = 1e-9

#: Auto-dispatch thresholds: the vectorized solver wins once the round
#: loop pushes enough work through NumPy to amortize array setup.
#: Calibrated from BENCH_emulator.json's tracked solve times — the
#: log-log power-law fits of the indexed and vectorized kernels,
#: measured per connected component (the unit dispatch actually sees),
#: cross at ~60 flows (see repro.net.calibration; the guard test
#: tests/unit/test_solver_calibration.py keeps these in sync with a
#: fresh fit of the checked-in data).
_VECTOR_MIN_FLOWS = 60
_VECTOR_MIN_ENTRIES = 240

#: Below this many active flows :class:`IncrementalMaxMin` skips dirty
#: tracking and re-solves everything: the capacity diff and component
#: bookkeeping cost more than the whole solve on tiny instances.
#: Calibrated from BENCH_emulator.json's incremental-tier measurements
#: (the fitted full-solve and incremental-re-solve power laws cross at
#: ~15 flows — see repro.net.calibration), guarded by the same test.
_INCREMENTAL_MIN_FLOWS = 15

#: When more than this fraction of active flows sit in dirty
#: components, the incremental engine re-solves every component (the
#: "full solve" fallback — bit-identical either way, but it skips the
#: per-component dispatch bookkeeping when almost everything moved).
_INCREMENTAL_FULL_FRACTION = 0.5

SOLVERS = ("auto", "reference", "indexed", "vectorized")

LinkKey = tuple[str, str]
"""Directed link identifier: (src node, dst node)."""


@dataclass(frozen=True)
class FlowDemand:
    """A flow's routing and demand, as seen by the allocator.

    Attributes:
        flow_id: caller-chosen identifier.
        links: directed links the flow traverses, in order.  An empty
            sequence means the endpoints are co-located (loopback): the
            flow is granted its full demand.
        demand_mbps: offered load in Mbps.
    """

    flow_id: Hashable
    links: tuple[LinkKey, ...] = field(default_factory=tuple)
    demand_mbps: float = 0.0


def max_min_allocation_reference(
    flows: Sequence[FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> dict[Hashable, float]:
    """The frozen reference water-filling implementation (the oracle).

    Rebuilds the flows-per-link incidence map every round; correct and
    simple, but the rebuild dominates on large instances.  Kept verbatim
    so the optimized solvers can be proven bit-compatible against it and
    the perf harness can measure the speedup honestly.
    """
    rates: dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    remaining = {key: float(cap) for key, cap in capacities.items()}

    active: dict[Hashable, FlowDemand] = {}
    for flow in flows:
        if flow.demand_mbps <= _EPSILON:
            continue
        if not flow.links:
            rates[flow.flow_id] = flow.demand_mbps  # loopback
            continue
        for key in flow.links:
            if key not in remaining:
                raise KeyError(f"flow {flow.flow_id!r} uses unknown link {key}")
        active[flow.flow_id] = flow

    while active:
        flows_on_link: dict[LinkKey, int] = {}
        for flow in active.values():
            for key in flow.links:
                flows_on_link[key] = flows_on_link.get(key, 0) + 1

        # Largest uniform increment every active flow can take.
        delta = min(
            remaining[key] / count for key, count in flows_on_link.items()
        )
        delta = min(
            delta,
            min(
                flow.demand_mbps - rates[fid]
                for fid, flow in active.items()
            ),
        )
        delta = max(delta, 0.0)

        for fid in active:
            rates[fid] += delta
        for key, count in flows_on_link.items():
            remaining[key] -= delta * count

        # Retire satisfied flows, then flows pinned by a saturated link.
        satisfied = [
            fid
            for fid, flow in active.items()
            if rates[fid] >= flow.demand_mbps - _EPSILON
        ]
        for fid in satisfied:
            del active[fid]
        saturated = {
            key
            for key, cap in remaining.items()
            if cap <= _EPSILON and flows_on_link.get(key)
        }
        if saturated:
            pinned = [
                fid
                for fid, flow in active.items()
                if any(key in saturated for key in flow.links)
            ]
            for fid in pinned:
                del active[fid]
        elif not satisfied and delta <= _EPSILON:
            break  # numerical dead-end; all remaining rates stay put

    return rates


def _partition_flows(
    flows: Sequence[FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> tuple[dict[Hashable, float], dict[Hashable, FlowDemand]]:
    """Shared preamble: grant loopbacks, drop zero demands, validate links.

    Returns the initial rates dict and the active flow set, exactly as
    the reference solver's first loop computes them.
    """
    rates: dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    active: dict[Hashable, FlowDemand] = {}
    for flow in flows:
        if flow.demand_mbps <= _EPSILON:
            continue
        if not flow.links:
            rates[flow.flow_id] = flow.demand_mbps  # loopback
            continue
        for key in flow.links:
            if key not in capacities:
                raise KeyError(f"flow {flow.flow_id!r} uses unknown link {key}")
        active[flow.flow_id] = flow
    return rates, active


def _solve_indexed(
    rates: dict[Hashable, float],
    active: dict[Hashable, FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> None:
    """Water-filling with incrementally maintained incidence counts.

    Identical arithmetic to the reference loop; the only change is that
    the flows-per-link counts are decremented as flows retire instead of
    being rebuilt from scratch every round, so a round costs
    O(active links + active flows) rather than O(total path length).
    """
    remaining = {key: float(capacities[key]) for flow in active.values() for key in flow.links}
    counts: dict[LinkKey, int] = {}
    for flow in active.values():
        for key in flow.links:
            counts[key] = counts.get(key, 0) + 1

    while active:
        delta = min(remaining[key] / count for key, count in counts.items())
        delta = min(
            delta,
            min(
                flow.demand_mbps - rates[fid]
                for fid, flow in active.items()
            ),
        )
        delta = max(delta, 0.0)

        for fid in active:
            rates[fid] += delta
        for key, count in counts.items():
            remaining[key] -= delta * count

        satisfied = [
            fid
            for fid, flow in active.items()
            if rates[fid] >= flow.demand_mbps - _EPSILON
        ]
        retired = [active.pop(fid) for fid in satisfied]
        # Saturation is judged against the round-start counts (still
        # including the just-satisfied flows), matching the reference.
        saturated = {
            key for key in counts if remaining[key] <= _EPSILON
        }
        if saturated:
            pinned = [
                fid
                for fid, flow in active.items()
                if any(key in saturated for key in flow.links)
            ]
            retired.extend(active.pop(fid) for fid in pinned)
        elif not satisfied and delta <= _EPSILON:
            break  # numerical dead-end; all remaining rates stay put

        for flow in retired:
            for key in flow.links:
                left = counts[key] - 1
                if left:
                    counts[key] = left
                else:
                    del counts[key]


#: Margin for the round-level skip tests in the vectorized kernel.  A
#: flow can only be satisfied this round when its start-of-round slack
#: is within ``_EPSILON`` of ``delta`` (and a link can only saturate
#: when its headroom ratio is), so rounds whose minimum slack/ratio sit
#: clearly above ``delta`` skip the retirement scans entirely.  The
#: margin doubles ``_EPSILON`` to absorb ulp-level rounding differences
#: between the skip predicate and the actual elementwise tests — a
#: false *positive* merely runs a scan that finds nothing.
_SKIP_MARGIN = 2.0 * _EPSILON


class CompiledComponent:
    """Frozen array form of one link-connected component.

    Building the entry arrays (flow↔link incidence in COO form, the
    per-flow entry slices, the link→flow CSR used for saturation
    retirement) costs O(path length) Python work — far more than a
    solve's round loop on re-solves.  The emulator's incremental engine
    therefore compiles each component once per flow-set shape and
    replays :meth:`solve` against fresh capacities every tick.
    """

    __slots__ = (
        "flow_ids",
        "link_keys",
        "demand",
        "ef",
        "el",
        "offsets",
        "counts0",
        "by_link_flow",
        "link_offsets",
        "n_flows",
        "n_links",
        "n_entries",
    )

    def __init__(self, component: Mapping[Hashable, FlowDemand]) -> None:
        self.flow_ids = list(component.keys())
        self.n_flows = len(self.flow_ids)
        link_index: dict[LinkKey, int] = {}
        entry_flow: list[int] = []
        entry_link: list[int] = []
        for fi, flow in enumerate(component.values()):
            for key in flow.links:
                li = link_index.get(key)
                if li is None:
                    li = link_index[key] = len(link_index)
                entry_flow.append(fi)
                entry_link.append(li)
        self.link_keys = list(link_index.keys())
        self.n_links = len(link_index)
        self.n_entries = len(entry_flow)
        self.ef = np.asarray(entry_flow, dtype=np.intp)
        self.el = np.asarray(entry_link, dtype=np.intp)
        # Entries are grouped by flow in build order, so each flow's
        # link indices live in one slice — used to retire its incidence
        # in O(path).
        offsets = np.zeros(self.n_flows + 1, dtype=np.intp)
        np.cumsum(
            [len(flow.links) for flow in component.values()],
            out=offsets[1:],
        )
        self.offsets = offsets
        self.demand = np.array(
            [flow.demand_mbps for flow in component.values()],
            dtype=np.float64,
        )
        self.counts0 = np.bincount(
            self.el, minlength=self.n_links
        ).astype(np.float64)
        # CSR by link: flows incident to link li (with multiplicity, in
        # entry order) are by_link_flow[link_offsets[li]:link_offsets[li+1]].
        # Saturation rounds use this to pin only the flows on the few
        # saturated links instead of scanning every entry.
        order = np.argsort(self.el, kind="stable")
        self.by_link_flow = self.ef[order]
        link_offsets = np.zeros(self.n_links + 1, dtype=np.intp)
        np.cumsum(self.counts0.astype(np.intp), out=link_offsets[1:])
        self.link_offsets = link_offsets

    def gather_capacities(
        self, capacities: Mapping[LinkKey, float]
    ) -> np.ndarray:
        """Per-link capacity array in this component's link order."""
        return np.array(
            [float(capacities[key]) for key in self.link_keys],
            dtype=np.float64,
        )

    def solve(
        self, cap: np.ndarray, rates: dict[Hashable, float]
    ) -> None:
        """Water-fill against ``cap`` (consumed) and write the rates.

        The round arithmetic is the reference loop's, op for op, in
        IEEE-754 float64 — results are bit-identical.  The departures
        are purely representational: retired flows carry ``+inf``
        demand shadows (so the unmasked reductions and retirement tests
        can never pick them), fully-retired links carry
        ``cap=+inf, count=1`` (so they drop out of the headroom minimum
        and the saturation scan exactly like the reference dropping the
        key from its incidence map), and ``rate`` keeps accumulating
        deltas for retired rows — their exact retirement-round value is
        captured into ``final`` the moment they retire, so the masked
        add the reference implies costs nothing here.  The loop is
        dispatch-bound at these sizes (~100+ rounds of small-array
        ufuncs), hence the raw ``ufunc.reduce`` / ``.nonzero()`` calls
        in place of their fromnumeric wrappers.
        """
        n_flows = self.n_flows
        demand = self.demand
        ef = self.ef
        el = self.el
        offsets = self.offsets
        by_link_flow = self.by_link_flow
        link_offsets = self.link_offsets
        counts = self.counts0.copy()

        rate = np.zeros(n_flows, dtype=np.float64)
        final = np.zeros(n_flows, dtype=np.float64)
        alive = np.ones(n_flows, dtype=bool)
        demand_shadow = demand.copy()
        sat_thresh = demand - _EPSILON
        ratio = np.empty(self.n_links, dtype=np.float64)
        slack = np.empty(n_flows, dtype=np.float64)
        scratch_l = np.empty(self.n_links, dtype=np.float64)
        satisfied = np.empty(n_flows, dtype=bool)
        sat_links = np.empty(self.n_links, dtype=bool)
        inf = np.inf
        min_reduce = np.minimum.reduce
        n_alive = n_flows

        # Links whose capacity starts at exactly 0 with no flows... are
        # impossible here: every link of a component carries >= 1 flow.
        while n_alive:
            np.divide(cap, counts, out=ratio)
            d1 = float(min_reduce(ratio))
            np.subtract(demand_shadow, rate, out=slack)
            d2 = float(min_reduce(slack))
            delta = d1 if d1 < d2 else d2
            if delta < 0.0:
                delta = 0.0

            rate += delta
            np.multiply(counts, delta, out=scratch_l)
            np.subtract(cap, scratch_l, out=cap)

            any_sat = False
            retired_entries = None
            if d2 <= delta + _SKIP_MARGIN:
                np.greater_equal(rate, sat_thresh, out=satisfied)
                any_sat = bool(satisfied.any())
                if any_sat:
                    alive ^= satisfied
                    retired = satisfied.nonzero()[0]
                    n_alive -= retired.size
                    final[retired] = rate[retired]
                    demand_shadow[retired] = inf
                    sat_thresh[retired] = inf
                    if retired.size == 1:
                        fi = retired[0]
                        retired_entries = el[offsets[fi] : offsets[fi + 1]]
                    elif retired.size * 8 > self.n_entries:
                        retired_entries = el[satisfied[ef]]
                    else:
                        retired_entries = np.concatenate(
                            [
                                el[offsets[fi] : offsets[fi + 1]]
                                for fi in retired
                            ]
                        )
            if d1 <= delta + _SKIP_MARGIN:
                # Saturation is judged against the round-start counts
                # (still including just-satisfied flows), matching the
                # reference.
                np.less_equal(cap, _EPSILON, out=sat_links)
                sat_idx = sat_links.nonzero()[0]
                if sat_idx.size:
                    if sat_idx.size == 1:
                        li = sat_idx[0]
                        cand = by_link_flow[
                            link_offsets[li] : link_offsets[li + 1]
                        ]
                    else:
                        cand = np.concatenate(
                            [
                                by_link_flow[
                                    link_offsets[li] : link_offsets[li + 1]
                                ]
                                for li in sat_idx
                            ]
                        )
                    cand = cand[alive[cand]]
                    if cand.size:
                        pinned = np.zeros(n_flows, dtype=bool)
                        pinned[cand] = True
                        alive &= ~pinned
                        pr = pinned.nonzero()[0]
                        n_alive -= pr.size
                        final[pr] = rate[pr]
                        demand_shadow[pr] = inf
                        sat_thresh[pr] = inf
                        if pr.size * 8 > self.n_entries:
                            pe = el[pinned[ef]]
                        else:
                            pe = np.concatenate(
                                [
                                    el[offsets[fi] : offsets[fi + 1]]
                                    for fi in pr
                                ]
                            )
                        retired_entries = (
                            pe
                            if retired_entries is None
                            else np.concatenate([retired_entries, pe])
                        )
                elif not any_sat and delta <= _EPSILON:
                    break  # numerical dead-end; remaining rates stay put
            elif not any_sat and delta <= _EPSILON:
                break  # numerical dead-end; remaining rates stay put

            if retired_entries is not None and retired_entries.size:
                # unbuffered: a path listing a link twice decrements
                # twice, matching the reference's per-occurrence counts
                np.subtract.at(counts, retired_entries, 1.0)
                dead = retired_entries[counts[retired_entries] == 0.0]
                if dead.size:
                    # Retired links leave the headroom minimum and the
                    # saturation scan for good.
                    counts[dead] = 1.0
                    cap[dead] = inf

        # Flows still alive (demand never met, no link saturated under
        # them — or the dead-end break) keep their current rate.
        np.copyto(final, rate, where=alive)
        for i, fid in enumerate(self.flow_ids):
            rates[fid] = float(final[i])


def _solve_vectorized(
    rates: dict[Hashable, float],
    active: dict[Hashable, FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> None:
    """The same water-filling rounds over NumPy arrays.

    Every scalar operation of the reference round maps to an elementwise
    float64 operation here (same IEEE-754 semantics, no reductions that
    reassociate sums), so results are bit-identical.
    """
    compiled = CompiledComponent(active)
    compiled.solve(compiled.gather_capacities(capacities), rates)
    active.clear()


def auto_solver(active_flows: Sequence[FlowDemand]) -> str:
    """The implementation ``solver="auto"`` dispatches to.

    Small instances stay on the indexed solver: below the thresholds the
    vectorized solver's array setup costs more than the whole solve (the
    perf harness's ``n005_f010`` case runs ~4x slower vectorized), so
    auto must never pick it there.  The thresholds are calibrated from
    the perf harness's measurements rather than hand-tuned — see
    :mod:`repro.net.calibration`.  ``active_flows`` is the post-
    partition active set — loopback and zero-demand flows are granted
    before dispatch and never count toward the thresholds.
    """
    entries = sum(len(flow.links) for flow in active_flows)
    return (
        "vectorized"
        if len(active_flows) >= _VECTOR_MIN_FLOWS
        and entries >= _VECTOR_MIN_ENTRIES
        else "indexed"
    )


def link_components(
    active: Mapping[Hashable, FlowDemand],
) -> list[dict[Hashable, FlowDemand]]:
    """Group active flows into link-connected components.

    Two flows are in the same component when their paths are joined by
    a chain of shared directed links.  Components share no links, so
    the max-min allocation of each is independent of the others.  The
    returned list is deterministic: components appear in the order of
    their first flow in ``active``, and flows keep ``active``'s
    iteration order within each component.
    """
    parent: dict[LinkKey, LinkKey] = {}

    def find(key: LinkKey) -> LinkKey:
        root = key
        while parent[root] != root:
            root = parent[root]
        while parent[key] != root:
            parent[key], key = root, parent[key]
        return root

    for flow in active.values():
        links = flow.links
        first = links[0]
        if first not in parent:
            parent[first] = first
        root = find(first)
        for key in links[1:]:
            if key not in parent:
                parent[key] = key
            other = find(key)
            if other != root:
                parent[other] = root
    groups: dict[LinkKey, dict[Hashable, FlowDemand]] = {}
    for fid, flow in active.items():
        groups.setdefault(find(flow.links[0]), {})[fid] = flow
    return list(groups.values())


def _solve_component(
    rates: dict[Hashable, float],
    component: dict[Hashable, FlowDemand],
    capacities: Mapping[LinkKey, float],
    solver: str,
) -> None:
    """Solve one component with the requested (or auto-picked) kernel.

    Consumes ``component`` (the kernels retire flows destructively) —
    callers that retain the dict must pass a copy.
    """
    kernel = auto_solver(tuple(component.values())) if solver == "auto" else solver
    if kernel == "reference":
        rates.update(
            max_min_allocation_reference(list(component.values()), capacities)
        )
    elif kernel == "vectorized":
        _solve_vectorized(rates, component, capacities)
    else:
        _solve_indexed(rates, component, capacities)


def max_min_allocation(
    flows: Sequence[FlowDemand],
    capacities: Mapping[LinkKey, float],
    *,
    solver: str = "auto",
) -> dict[Hashable, float]:
    """Compute the demand-bounded max-min fair rates for ``flows``.

    The instance is split into link-connected components, each solved
    independently (components share no links, so the result is the same
    max-min fair allocation).  With ``solver="auto"`` the kernel is
    picked per component, so one city-scale instance of many regional
    components dispatches each region at its own size.

    Args:
        flows: flow demands; flows whose paths reference a link absent
            from ``capacities`` raise ``KeyError`` (a wiring bug).
        capacities: directed link capacities in Mbps.
        solver: ``"auto"`` (default) picks the vectorized kernel for
            large components and the indexed kernel otherwise;
            ``"reference"``, ``"indexed"`` and ``"vectorized"`` force a
            specific kernel.  All choices return bit-identical
            allocations.

    Returns:
        Mapping from flow id to allocated rate in Mbps.
    """
    if solver not in SOLVERS:
        raise ValueError(
            f"unknown solver {solver!r}; expected one of {SOLVERS}"
        )
    rates, active = _partition_flows(flows, capacities)
    if not active:
        return rates
    for component in link_components(active):
        _solve_component(rates, component, capacities, solver)
    return rates


class ArrayCapacities(Mapping):
    """Read-only ``Mapping[LinkKey, float]`` view over a capacity array.

    The emulator's structure-of-arrays core keeps link capacities in one
    flat float64 array; this wrapper lets the solver kernels index it by
    link key without materializing an O(links) dict every tick.
    """

    __slots__ = ("index", "values")

    def __init__(
        self, index: Mapping[LinkKey, int], values: np.ndarray
    ) -> None:
        self.index = index
        self.values = values

    def __getitem__(self, key: LinkKey) -> float:
        return float(self.values[self.index[key]])

    def __contains__(self, key: object) -> bool:
        return key in self.index

    def __iter__(self) -> Iterator[LinkKey]:
        return iter(self.index)

    def __len__(self) -> int:
        return len(self.index)


class _ComponentState:
    """One retained component inside :class:`IncrementalMaxMin`."""

    __slots__ = ("flows", "n_entries", "compiled", "cap_pos")

    def __init__(self, flows: dict[Hashable, FlowDemand]) -> None:
        self.flows = flows
        self.n_entries = sum(len(flow.links) for flow in flows.values())
        #: Lazily built on the first vectorized-eligible solve and then
        #: replayed every re-solve (setup costs more than the rounds).
        self.compiled: Optional[CompiledComponent] = None
        self.cap_pos: Optional[np.ndarray] = None


class IncrementalMaxMin:
    """Stateful max-min re-solver over dirty connected components.

    Tracks, between calls, the component structure of the active flows
    and the per-link capacities of the last allocation.  When only the
    flow set is unchanged (same ``shape_rev``), a call re-runs
    water-filling *only* over components whose link capacities moved;
    every clean component keeps its cached rates.  Because components
    share no links, a component's allocation is a pure function of its
    own flows and capacities, so the result is exactly — bitwise — the
    allocation ``max_min_allocation`` computes from scratch
    (``tests/unit/test_fairness_incremental.py`` proves this over
    seeded perturbation sequences).

    Fallbacks, all bit-identical to the incremental path:

    * shape change (flow add/remove/reroute/demand, topology change):
      full re-solve and structure rebuild;
    * fewer than ``min_flows`` active flows: dirty tracking costs more
      than the solve, so everything is re-solved;
    * dirty components covering more than ``full_fraction`` of active
      flows: every component is re-solved (the "full solve" fallback).
    """

    def __init__(
        self,
        *,
        min_flows: Optional[int] = None,
        full_fraction: float = _INCREMENTAL_FULL_FRACTION,
    ) -> None:
        self.min_flows = (
            _INCREMENTAL_MIN_FLOWS if min_flows is None else min_flows
        )
        self.full_fraction = full_fraction
        self._shape_rev: object = None
        self._solved_caps: Optional[np.ndarray] = None
        self._rates: dict[Hashable, float] = {}
        self._components: list[_ComponentState] = []
        self._link_index: Optional[Mapping[LinkKey, int]] = None
        self._link_comp: Optional[np.ndarray] = None
        self._active_count = 0
        #: Observability counters (deterministic; surfaced as gauges).
        self.full_solves = 0
        self.partial_solves = 0
        self.components_resolved = 0

    @property
    def component_count(self) -> int:
        return len(self._components)

    def invalidate(self) -> None:
        """Drop all cached structure; the next call fully re-solves."""
        self._shape_rev = None
        self._solved_caps = None

    def solve(
        self,
        flows: Sequence[FlowDemand],
        link_index: Mapping[LinkKey, int],
        cap_values: np.ndarray,
        shape_rev: object,
    ) -> tuple[dict[Hashable, float], Optional[list[Hashable]]]:
        """(Re-)solve against the capacity array.

        Args:
            flows: the full flow set (consulted only on shape change).
            link_index: link key -> position in ``cap_values``.
            cap_values: current per-link capacities (not aliased; a
                private copy is kept as the solved-state snapshot).
            shape_rev: any value that changes whenever the flow set or
                the link universe changes (the emulator passes its
                ``(topology.version, flows_rev)``).

        Returns:
            ``(rates, changed)`` — the complete allocation (owned by
            the engine; treat as read-only) and the flow ids whose
            rates were recomputed, or ``None`` when everything was.
        """
        capacities = ArrayCapacities(link_index, cap_values)
        if (
            self._shape_rev != shape_rev
            or self._solved_caps is None
            or self._solved_caps.shape != cap_values.shape
        ):
            return self._solve_full(flows, link_index, capacities, cap_values, shape_rev)
        dirty = np.flatnonzero(self._solved_caps != cap_values)
        if dirty.size == 0:
            return self._rates, []
        if self._active_count < self.min_flows:
            return self._solve_full(flows, link_index, capacities, cap_values, shape_rev)
        self._solved_caps = cap_values.copy()
        assert self._link_comp is not None
        comp_ids = np.unique(self._link_comp[dirty])
        if comp_ids.size and comp_ids[0] < 0:
            comp_ids = comp_ids[1:]  # links no active flow crosses
        if comp_ids.size == 0:
            return self._rates, []
        dirty_flows = sum(len(self._components[c].flows) for c in comp_ids)
        if dirty_flows > self.full_fraction * self._active_count:
            comp_ids = np.arange(len(self._components))
        changed: list[Hashable] = []
        for ci in comp_ids:
            state = self._components[int(ci)]
            self._resolve_component(state, capacities, cap_values)
            changed.extend(state.flows)
        self.partial_solves += 1
        self.components_resolved += int(len(comp_ids))
        return self._rates, changed

    def _resolve_component(
        self,
        state: _ComponentState,
        capacities: Mapping[LinkKey, float],
        cap_values: np.ndarray,
    ) -> None:
        """(Re-)solve one retained component into the cached rates.

        Vectorized-size components are compiled once and replayed
        against a fancy-indexed slice of the capacity array; small
        components go through the dict-based indexed kernel (same
        dispatch rule as :func:`auto_solver`, from cached sizes).
        """
        flows = state.flows
        if (
            len(flows) >= _VECTOR_MIN_FLOWS
            and state.n_entries >= _VECTOR_MIN_ENTRIES
        ):
            if state.compiled is None:
                state.compiled = CompiledComponent(flows)
                assert self._link_index is not None
                state.cap_pos = np.fromiter(
                    (self._link_index[key] for key in state.compiled.link_keys),
                    dtype=np.intp,
                    count=state.compiled.n_links,
                )
            state.compiled.solve(cap_values[state.cap_pos], self._rates)
        else:
            rates = dict.fromkeys(flows, 0.0)
            _solve_indexed(rates, dict(flows), capacities)
            self._rates.update(rates)

    def _solve_full(
        self,
        flows: Sequence[FlowDemand],
        link_index: Mapping[LinkKey, int],
        capacities: ArrayCapacities,
        cap_values: np.ndarray,
        shape_rev: object,
    ) -> tuple[dict[Hashable, float], None]:
        rates, active = _partition_flows(flows, capacities)
        self._components = [
            _ComponentState(component)
            for component in (link_components(active) if active else [])
        ]
        self._active_count = len(active)
        self._link_index = link_index
        self._rates = rates
        link_comp = np.full(len(link_index), -1, dtype=np.intp)
        for ci, state in enumerate(self._components):
            for flow in state.flows.values():
                for key in flow.links:
                    link_comp[link_index[key]] = ci
            self._resolve_component(state, capacities, cap_values)
        self._link_comp = link_comp
        self._solved_caps = cap_values.copy()
        self._shape_rev = shape_rev
        self.full_solves += 1
        return rates, None
