"""Demand-bounded max-min fair bandwidth allocation.

Implements progressive filling (water-filling): all unsatisfied flows'
rates grow at the same pace; a flow stops growing when it reaches its
demand or when any link on its path saturates.  The result is the unique
max-min fair allocation, which is:

* *feasible* — no link carries more than its capacity,
* *demand-bounded* — no flow exceeds what it asked for,
* *max-min fair* — a flow's rate can only be increased by decreasing
  the rate of a flow with an already-smaller rate.

This is the fluid-level idealization of what per-flow fair queueing (or
long-run TCP) gives competing streams, and is the allocation model the
emulator recomputes whenever demands or capacities change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

_EPSILON = 1e-9

LinkKey = tuple[str, str]
"""Directed link identifier: (src node, dst node)."""


@dataclass(frozen=True)
class FlowDemand:
    """A flow's routing and demand, as seen by the allocator.

    Attributes:
        flow_id: caller-chosen identifier.
        links: directed links the flow traverses, in order.  An empty
            sequence means the endpoints are co-located (loopback): the
            flow is granted its full demand.
        demand_mbps: offered load in Mbps.
    """

    flow_id: Hashable
    links: tuple[LinkKey, ...] = field(default_factory=tuple)
    demand_mbps: float = 0.0


def max_min_allocation(
    flows: Sequence[FlowDemand],
    capacities: Mapping[LinkKey, float],
) -> dict[Hashable, float]:
    """Compute the demand-bounded max-min fair rates for ``flows``.

    Args:
        flows: flow demands; flows whose paths reference a link absent
            from ``capacities`` raise ``KeyError`` (a wiring bug).
        capacities: directed link capacities in Mbps.

    Returns:
        Mapping from flow id to allocated rate in Mbps.
    """
    rates: dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    remaining = {key: float(cap) for key, cap in capacities.items()}

    active: dict[Hashable, FlowDemand] = {}
    for flow in flows:
        if flow.demand_mbps <= _EPSILON:
            continue
        if not flow.links:
            rates[flow.flow_id] = flow.demand_mbps  # loopback
            continue
        for key in flow.links:
            if key not in remaining:
                raise KeyError(f"flow {flow.flow_id!r} uses unknown link {key}")
        active[flow.flow_id] = flow

    while active:
        flows_on_link: dict[LinkKey, int] = {}
        for flow in active.values():
            for key in flow.links:
                flows_on_link[key] = flows_on_link.get(key, 0) + 1

        # Largest uniform increment every active flow can take.
        delta = min(
            remaining[key] / count for key, count in flows_on_link.items()
        )
        delta = min(
            delta,
            min(
                flow.demand_mbps - rates[fid]
                for fid, flow in active.items()
            ),
        )
        delta = max(delta, 0.0)

        for fid, flow in active.items():
            rates[fid] += delta
        for key, count in flows_on_link.items():
            remaining[key] -= delta * count

        # Retire satisfied flows, then flows pinned by a saturated link.
        satisfied = [
            fid
            for fid, flow in active.items()
            if rates[fid] >= flow.demand_mbps - _EPSILON
        ]
        for fid in satisfied:
            del active[fid]
        saturated = {
            key
            for key, cap in remaining.items()
            if cap <= _EPSILON and flows_on_link.get(key)
        }
        if saturated:
            pinned = [
                fid
                for fid, flow in active.items()
                if any(key in saturated for key in flow.links)
            ]
            for fid in pinned:
                del active[fid]
        elif not satisfied and delta <= _EPSILON:
            break  # numerical dead-end; all remaining rates stay put

    return rates
