"""Unit tests for placement explanations."""

from repro.cluster.orchestrator import ClusterState
from repro.core.dag import Component, ComponentDAG
from repro.core.explain import explain_placement
from repro.mesh.topology import citylab_subset
from repro.net.netem import NetworkEmulator


def demo_dag(edge_mbps=10.0):
    dag = ComponentDAG("demo")
    dag.add_component(Component("a", cpu=8, memory_mb=64))
    dag.add_component(Component("b", cpu=8, memory_mb=64))
    dag.add_component(Component("c", cpu=8, memory_mb=64))
    dag.add_dependency("a", "b", edge_mbps)
    dag.add_dependency("b", "c", 1.0)
    return dag


def world():
    topology = citylab_subset()
    return ClusterState.from_topology(topology), NetworkEmulator(topology)


class TestExplainPlacement:
    def test_reports_order_ranking_and_assignments(self):
        cluster, netem = world()
        explanation = explain_placement(demo_dag(), cluster, netem)
        assert explanation.order == ("a", "b", "c")
        assert explanation.node_ranking[0] == "node1"
        assert set(explanation.assignments) == {"a", "b", "c"}

    def test_does_not_mutate_the_live_ledger(self):
        cluster, netem = world()
        free_before = cluster.total_free().cpu
        explain_placement(demo_dag(), cluster, netem)
        assert cluster.total_free().cpu == free_before

    def test_edge_fates_cover_every_edge(self):
        cluster, netem = world()
        explanation = explain_placement(demo_dag(), cluster, netem)
        assert len(explanation.edges) == 2

    def test_colocated_fraction(self):
        cluster, netem = world()
        # 8-core components on 12/12/12/8 nodes: every component sits
        # alone, so nothing is co-located.
        explanation = explain_placement(demo_dag(), cluster, netem)
        assert explanation.colocated_fraction == 0.0

        small = ComponentDAG("small")
        small.add_component(Component("x", cpu=1, memory_mb=8))
        small.add_component(Component("y", cpu=1, memory_mb=8))
        small.add_dependency("x", "y", 5.0)
        cluster2, netem2 = world()
        explanation2 = explain_placement(small, cluster2, netem2)
        assert explanation2.colocated_fraction == 1.0

    def test_flags_under_provisioned_edges(self):
        cluster, netem = world()
        # A 100 Mbps requirement across a mesh whose best path is ~25.
        explanation = explain_placement(demo_dag(edge_mbps=100.0), cluster, netem)
        assert explanation.unsatisfied_edges
        assert "UNDER-PROVISIONED" in explanation.render()

    def test_render_is_human_readable(self):
        cluster, netem = world()
        text = explain_placement(demo_dag(), cluster, netem).render()
        assert "packing order" in text
        assert "node ranking" in text
        assert "loopback" in text or "via" in text

    def test_works_without_netem(self):
        cluster, _ = world()
        explanation = explain_placement(demo_dag(), cluster, None)
        for edge in explanation.edges:
            if not edge.colocated:
                assert edge.path_capacity_mbps is None
                assert edge.satisfied  # unknown capacity is not flagged


class TestEdgeFateSatisfied:
    def test_loopback_always_satisfied(self):
        from repro.core.explain import EdgeFate

        edge = EdgeFate(
            src="a", dst="b", required_mbps=10_000.0, colocated=True
        )
        assert edge.satisfied

    def test_unknown_capacity_not_flagged(self):
        from repro.core.explain import EdgeFate

        edge = EdgeFate(
            src="a", dst="b", required_mbps=100.0, colocated=False,
            path=("node1", "node2"), path_capacity_mbps=None,
        )
        assert edge.satisfied

    def test_wireless_path_with_headroom_satisfied(self):
        from repro.core.explain import EdgeFate

        edge = EdgeFate(
            src="a", dst="b", required_mbps=10.0, colocated=False,
            path=("node1", "node2"), path_capacity_mbps=25.0,
        )
        assert edge.satisfied

    def test_constrained_wireless_path_flagged(self):
        from repro.core.explain import EdgeFate

        edge = EdgeFate(
            src="a", dst="b", required_mbps=100.0, colocated=False,
            path=("node1", "node3", "node2"), path_capacity_mbps=25.0,
        )
        assert not edge.satisfied

    def test_exact_capacity_boundary_satisfied(self):
        from repro.core.explain import EdgeFate

        edge = EdgeFate(
            src="a", dst="b", required_mbps=25.0, colocated=False,
            path=("node1", "node2"), path_capacity_mbps=25.0,
        )
        assert edge.satisfied
