"""The structure-of-arrays tick core: parity, views, and round-trips.

The emulator's hot path stores queue and flow state in flat NumPy
arrays (:class:`repro.net.queues.QueueArrays`,
:class:`repro.net.flows.FlowArrays`) with the object API left as thin
views.  Everything here pins the refactor's contract:

* the vectorized queue step replays the scalar ``LinkQueue.update``
  bit for bit, and the row views really alias the shared arrays;
* the flow-incidence arrays accumulate offered load in the scalar
  loop's exact addition order;
* the grid-grouped capacity scan only bumps the allocation epoch when
  a capacity actually changes, and rebuilds itself on topology or
  shaping changes;
* a pickled emulator restores into a byte-identical continuation.
"""

import pickle

import numpy as np
import pytest

from repro.mesh.node import MeshNode
from repro.mesh.topology import MeshTopology
from repro.mesh.traces import BandwidthTrace
from repro.net.flows import FlowArrays
from repro.net.netem import NetworkEmulator
from repro.net.queues import ArrayLinkQueue, LinkQueue, QueueArrays
from repro.sim.engine import Engine


def random_sequences(n_queues, n_steps, seed):
    rng = np.random.default_rng(seed)
    offered = rng.uniform(0.0, 40.0, size=(n_steps, n_queues))
    offered[rng.random(offered.shape) < 0.15] = 0.0  # idle steps
    capacity = rng.uniform(0.0, 25.0, size=(n_steps, n_queues))
    capacity[rng.random(capacity.shape) < 0.1] = 0.0  # dead links
    return offered, capacity


class TestQueueArraysParity:
    def test_update_all_matches_scalar_queues_bit_for_bit(self):
        n, steps = 13, 400
        buffers = np.linspace(5.0, 40.0, n)
        arrays = QueueArrays(buffers)
        scalars = [LinkQueue(buffer_mbit=float(b)) for b in buffers]
        offered, capacity = random_sequences(n, steps, seed=42)
        for s in range(steps):
            arrays.update_all(0.5, offered[s], capacity[s])
            for i, q in enumerate(scalars):
                q.update(0.5, float(offered[s, i]), float(capacity[s, i]))
                assert arrays.backlog_mbit[i] == q.backlog_mbit
                assert arrays.last_loss_fraction[i] == q.last_loss_fraction
                assert arrays.dropped_mbit_total[i] == q.dropped_mbit_total

    def test_rejects_negative_dt_and_bad_buffers(self):
        arrays = QueueArrays([10.0])
        with pytest.raises(Exception):
            arrays.update_all(-0.1, np.zeros(1), np.zeros(1))
        with pytest.raises(Exception):
            QueueArrays([10.0, 0.0])
        with pytest.raises(Exception):
            QueueArrays([[10.0]])

    def test_pickle_round_trip_preserves_state(self):
        arrays = QueueArrays([10.0, 20.0])
        arrays.update_all(1.0, np.array([30.0, 5.0]), np.array([5.0, 5.0]))
        clone = pickle.loads(pickle.dumps(arrays))
        assert np.array_equal(clone.backlog_mbit, arrays.backlog_mbit)
        assert np.array_equal(
            clone.dropped_mbit_total, arrays.dropped_mbit_total
        )
        # Scratch buffers are rebuilt, not serialized, and updates work.
        clone.update_all(1.0, np.array([1.0, 1.0]), np.array([5.0, 5.0]))


class TestArrayLinkQueueView:
    def test_view_reads_and_writes_shared_arrays(self):
        arrays = QueueArrays([10.0, 20.0])
        view = ArrayLinkQueue(arrays, 1)
        assert view.buffer_mbit == 20.0
        # The inherited scalar update writes through to the arrays...
        view.update(1.0, 30.0, 5.0)
        assert arrays.backlog_mbit[1] == view.backlog_mbit > 0.0
        assert arrays.backlog_mbit[0] == 0.0
        # ...and a vectorized step is visible through the view.
        arrays.update_all(1.0, np.array([0.0, 0.0]), np.array([100.0, 100.0]))
        assert view.backlog_mbit == arrays.backlog_mbit[1]
        view.reset()
        assert arrays.backlog_mbit[1] == 0.0

    def test_scalar_view_update_equals_vectorized_step(self):
        buffers = [8.0, 12.0]
        shared = QueueArrays(buffers)
        views = [ArrayLinkQueue(shared, i) for i in range(2)]
        vec = QueueArrays(buffers)
        offered, capacity = random_sequences(2, 100, seed=7)
        for s in range(100):
            for i, view in enumerate(views):
                view.update(0.5, float(offered[s, i]), float(capacity[s, i]))
            vec.update_all(0.5, offered[s], capacity[s])
            assert np.array_equal(vec.backlog_mbit, shared.backlog_mbit)
            assert np.array_equal(
                vec.last_loss_fraction, shared.last_loss_fraction
            )

    def test_views_share_one_arrays_object_through_pickle(self):
        arrays = QueueArrays([10.0, 20.0])
        views = [ArrayLinkQueue(arrays, i) for i in range(2)]
        restored = pickle.loads(pickle.dumps({"a": arrays, "v": views}))
        assert restored["v"][0]._arrays is restored["a"]
        assert restored["v"][1]._arrays is restored["a"]


def build_traced_emulator(*, trace_dt=2.0):
    """Three nodes in a line; the a-b link follows a coarse trace."""
    topo = MeshTopology()
    for name in ("a", "b", "c"):
        topo.add_node(MeshNode(name, cpu_cores=4, memory_mb=4096))
    ab = topo.add_link("a", "b", capacity_mbps=10.0)
    topo.add_link("b", "c", capacity_mbps=20.0)
    ab.set_trace(
        BandwidthTrace(
            [0.0, trace_dt, 2 * trace_dt], [10.0, 6.0, 14.0], loop=True
        )
    )
    emu = NetworkEmulator(topo)
    emu.add_flow("f1", "a", "c", 8.0)
    emu.add_flow("f2", "a", "b", 5.0)
    return emu


class TestFlowArraysParity:
    def test_offered_matches_scalar_accumulation_order(self):
        rng = np.random.default_rng(3)
        n_flows, n_links = 60, 15
        link_index = {(f"n{i}", f"n{i + 1}"): i for i in range(n_links)}
        keys = list(link_index)

        class Flow:
            def __init__(self, fid, links, demand, tag):
                self.flow_id = fid
                self.links = links
                self.demand_mbps = demand
                self.tag = tag

        flows = {}
        for i in range(n_flows):
            start = int(rng.integers(0, n_links))
            hops = int(rng.integers(0, 4))
            links = tuple(keys[(start + h) % n_links] for h in range(hops))
            flows[f"f{i}"] = Flow(
                f"f{i}", links, float(rng.uniform(0.0, 30.0)), f"t{i % 3}"
            )
        arrays = FlowArrays(flows, link_index)
        offered = arrays.offered_mbps(n_links)
        # The scalar loop the arrays replace: registration order, one
        # add per path entry.
        expected = np.zeros(n_links)
        for flow in flows.values():
            for key in flow.links:
                expected[link_index[key]] += flow.demand_mbps
        assert np.array_equal(offered, expected)

    def test_tag_accounting_keeps_every_tag_and_sums_terms(self):
        link_index = {("a", "b"): 0}

        class Flow:
            def __init__(self, fid, links, demand, tag):
                self.flow_id = fid
                self.links = links
                self.demand_mbps = demand
                self.tag = tag

        flows = {
            "f1": Flow("f1", (("a", "b"),), 4.0, "video"),
            "f2": Flow("f2", (("a", "b"),), 2.0, "video"),
            "f3": Flow("f3", (), 9.0, "idle"),  # loopback: zero hops
        }
        arrays = FlowArrays(flows, link_index)
        acc = {"video": 1.0}
        arrays.accumulate_offered_by_tag(0.5, acc)
        assert acc["video"] == 1.0 + (4.0 * 0.5 * 1 + 2.0 * 0.5 * 1)
        assert acc["idle"] == 0.0  # present even though it moved nothing


class TestCapacityScanEpoch:
    def test_static_mesh_never_bumps_epoch(self):
        topo = MeshTopology()
        for name in ("a", "b"):
            topo.add_node(MeshNode(name, cpu_cores=4, memory_mb=4096))
        topo.add_link("a", "b", capacity_mbps=10.0)
        emu = NetworkEmulator(topo)
        emu.add_flow("f", "a", "b", 5.0)
        emu.tick()
        epoch = emu._cap_epoch
        for _ in range(5):
            emu.engine.run_until(emu.engine.now + emu.tick_s)
            emu.tick()
        assert emu._cap_epoch == epoch

    def test_epoch_bumps_only_on_trace_boundaries(self):
        emu = build_traced_emulator(trace_dt=2.0)
        emu.tick()
        epochs = [emu._cap_epoch]
        for _ in range(6):
            emu.engine.run_until(emu.engine.now + 1.0)
            emu.tick()
            epochs.append(emu._cap_epoch)
        bumps = [b - a for a, b in zip(epochs, epochs[1:])]
        # Trace steps every 2 s, ticks every 1 s: every other tick is a
        # pure cache hit on the held segment.
        assert bumps == [0, 1, 0, 1, 0, 1]

    def test_shaping_change_is_seen_without_a_topology_change(self):
        emu = build_traced_emulator()
        emu.tick()
        before = emu.capacity("b", "c")
        emu.topology.link("b", "c").set_rate_limit(3.0)
        assert emu.capacity("b", "c") == 3.0 != before

    def test_what_if_recompute_restores_live_allocations(self):
        emu = build_traced_emulator()
        emu.tick()
        live = {f.flow_id: f.allocated_mbps for f in emu.flows}
        emu.recompute({("a", "b"): 1.0, ("b", "a"): 1.0,
                       ("b", "c"): 1.0, ("c", "b"): 1.0})
        throttled = {f.flow_id: f.allocated_mbps for f in emu.flows}
        assert throttled != live
        emu.recompute()
        assert {f.flow_id: f.allocated_mbps for f in emu.flows} == live


class TestCheckpointRoundTrip:
    def run_ticks(self, engine, emu, n):
        for _ in range(n):
            engine.run_until(engine.now + emu.tick_s)
            emu.tick()

    def test_restored_emulator_continues_byte_identically(self):
        """Cut a traced run mid-flight, restore the pickle, and drive
        both copies forward: every observable — and a re-pickle of the
        whole state — must match byte for byte."""
        emu = build_traced_emulator()
        engine = emu.engine
        self.run_ticks(engine, emu, 7)
        blob = pickle.dumps((engine, emu))

        self.run_ticks(engine, emu, 9)
        engine2, emu2 = pickle.loads(blob)
        self.run_ticks(engine2, emu2, 9)

        assert {f.flow_id: f.allocated_mbps for f in emu.flows} == {
            f.flow_id: f.allocated_mbps for f in emu2.flows
        }
        assert emu.offered_mbit_by_tag() == emu2.offered_mbit_by_tag()
        assert np.array_equal(
            emu._queue_arrays.backlog_mbit, emu2._queue_arrays.backlog_mbit
        )
        assert pickle.dumps((engine, emu)) == pickle.dumps(
            (engine2, emu2)
        )

    def test_restore_rebuilds_scan_without_epoch_bump(self):
        """Derived scan state is dropped from the pickle; the rebuild
        re-reads the same capacities, so the allocation fingerprint
        stays valid and the first post-restore tick does not re-solve."""
        emu = build_traced_emulator()
        engine = emu.engine
        self.run_ticks(engine, emu, 4)
        emu2 = pickle.loads(pickle.dumps((engine, emu)))[1]
        epoch = emu2._cap_epoch
        assert emu2._scan_rev is None  # derived state not serialized
        emu2.capacities_now()  # forces the rebuild + rescan
        assert emu2._cap_epoch == epoch
