"""The BASS net-monitor (§4.2).

Gathers bandwidth information with two probing modes:

* **Max-capacity probing** — flood a link to learn its full capacity.
  Done once at startup for every link; results are *cached* and served
  to the scheduler and controller until a new full probe is requested.
  The cache is what makes Fig 8's timeline interesting: after a capacity
  drop the controller acts on stale capacity until the full probe
  completes.
* **Headroom probing** — inject a small amount of traffic (10 % of the
  cached capacity for 1 s) to check whether a required amount of spare
  capacity exists, without flooding.

Probe traffic is injected into the network emulator as real flows
tagged ``"probe"``, so the overhead figures of §6.3.4 (0.3 % of link
traffic for headroom probing) come out of the same accounting as
application traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Iterable, Optional

from ..config import ProbeConfig
from ..errors import RoutingError, TopologyError
from ..net.netem import NetworkEmulator
from ..obs.trace import TracerBase, resolve_tracer
from ..sim.counters import sequence

#: Probe flow ids must be unique across *all* monitors sharing one
#: emulator (the control plane shares one monitor per mesh; standalone
#: per-application monitors remain supported).  A registered sequence so
#: checkpoints capture/restore the position (:mod:`repro.sim.counters`).
_PROBE_SEQUENCE = sequence("netmonitor.probe", start=1)


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one probe."""

    kind: str  # "full" | "headroom"
    src: str
    dst: str
    time: float
    capacity_mbps: float
    available_mbps: float
    headroom_ok: Optional[bool] = None


@dataclass
class MonitorCaches:
    """Probe caches shared between a fleet monitor and its region views.

    Link *capacity* is a physical fact, so the capacity cache and the
    full-probe cooldown clock are keyed on the directed link and shared
    fleet-wide: a region that full-probed a link spares every other
    view the flood.  *Headroom* measurements and probe-event provenance
    are observations made by one control loop, so they are keyed on
    ``(region, src, dst)`` — a region-scoped view never serves (or
    poisons) another region's headroom entry, and the fleet-wide
    monitor (region ``""``) keeps its own namespace.
    """

    capacity: dict[tuple[str, str], float] = field(default_factory=dict)
    capacity_time: dict[tuple[str, str], float] = field(default_factory=dict)
    last_full_probe: dict[tuple[str, str], float] = field(default_factory=dict)
    headroom: dict[tuple[str, str, str], ProbeResult] = field(
        default_factory=dict
    )
    probe_event_ids: dict[tuple[str, str, str], int] = field(
        default_factory=dict
    )


class NetMonitor:
    """Per-mesh bandwidth monitor with capacity caching.

    Args:
        netem: the network emulator to probe and account against.
        config: probing parameters.
        region: label of the region this monitor serves; the empty
            string is the fleet-wide (unscoped) monitor.  Region labels
            namespace the headroom cache, never the capacity cache.
        scope: restrict probing to links with *both* endpoints in this
            node set (None = the whole mesh).  Startup floods and
            path-link enumeration stay inside the scope, so a region
            view never injects cross-region probe traffic.
        caches: share probe caches with another monitor (used by
            :meth:`region_view`); defaults to a private set.
    """

    def __init__(
        self,
        netem: NetworkEmulator,
        config: Optional[ProbeConfig] = None,
        *,
        tracer: Optional[TracerBase] = None,
        region: str = "",
        scope: Optional[Iterable[str]] = None,
        caches: Optional[MonitorCaches] = None,
    ) -> None:
        self.netem = netem
        self.config = config if config is not None else ProbeConfig()
        self.tracer = resolve_tracer(tracer)
        self.region = region
        self.scope: Optional[frozenset[str]] = (
            frozenset(scope) if scope is not None else None
        )
        self._caches = caches if caches is not None else MonitorCaches()
        self._capacity_cache = self._caches.capacity
        self._cache_time = self._caches.capacity_time
        self._last_full_probe = self._caches.last_full_probe
        #: Headroom results keyed (region, src, dst): views of different
        #: regions never alias each other's entries.
        self._last_headroom = self._caches.headroom
        #: Flight-recorder id of the last probe event per (region, link),
        #: so downstream decisions (violations) can cite the measurement
        #: that triggered them even across headroom-cache reuse.
        self._probe_event_ids = self._caches.probe_event_ids
        self.full_probe_count = 0
        self.headroom_probe_count = 0
        self.headroom_cache_hits = 0
        self.probe_log: list[ProbeResult] = []

    def region_view(
        self, region: str, nodes: Iterable[str]
    ) -> "NetMonitor":
        """A region-scoped view sharing this monitor's probe caches.

        The view probes only links inside ``nodes``, keeps its own
        probe counters (per-region overhead accounting), and namespaces
        its headroom cache under ``region`` while sharing the fleet's
        capacity cache and full-probe cooldowns.
        """
        return NetMonitor(
            self.netem,
            self.config,
            tracer=self.tracer,
            region=region,
            scope=nodes,
            caches=self._caches,
        )

    def in_scope(self, src: str, dst: str) -> bool:
        """Whether a directed link lies inside this monitor's scope."""
        return self.scope is None or (
            src in self.scope and dst in self.scope
        )

    # -- probe traffic injection ---------------------------------------------

    def _inject_probe_traffic(self, src: str, dst: str, rate_mbps: float) -> None:
        """Add a short-lived probe flow so overhead is accounted."""
        if rate_mbps <= 0 or src == dst:
            return
        flow_id = f"__probe_{next(_PROBE_SEQUENCE)}"
        self.netem.add_flow(flow_id, src, dst, rate_mbps, tag="probe")
        self.netem.engine.schedule_in(
            self.config.probe_duration_s,
            partial(self.netem.remove_flow, flow_id),
        )

    # -- max-capacity probing --------------------------------------------------

    def full_probe(self, src: str, dst: str) -> ProbeResult:
        """Flood the direct link ``src -> dst`` to learn its capacity.

        The measured value replaces the cache entry.  Respecting
        ``full_probe_cooldown_s`` is the *caller's* job (the controller
        checks :meth:`full_probe_allowed`); calling this directly always
        probes.
        """
        capacity = self.netem.capacity(src, dst)
        self._inject_probe_traffic(src, dst, capacity)
        key = (src, dst)
        now = self.netem.now
        self._capacity_cache[key] = capacity
        self._cache_time[key] = now
        self._last_full_probe[key] = now
        self.full_probe_count += 1
        result = ProbeResult(
            kind="full",
            src=src,
            dst=dst,
            time=now,
            capacity_mbps=capacity,
            available_mbps=self.netem.available_bandwidth(src, dst),
        )
        self.probe_log.append(result)
        if self.tracer.enabled:
            self._probe_event_ids[(self.region, src, dst)] = self.tracer.emit(
                "probe.max_capacity",
                now,
                src=src,
                dst=dst,
                capacity_mbps=result.capacity_mbps,
                available_mbps=result.available_mbps,
            )
        return result

    def full_probe_allowed(self, src: str, dst: str) -> bool:
        """Whether the per-link full-probe cooldown has elapsed."""
        last = self._last_full_probe.get((src, dst))
        if last is None:
            return True
        return self.netem.now - last >= self.config.full_probe_cooldown_s

    def probe_all_links(self, *, force: bool = False) -> int:
        """Startup round: max-capacity probe of every directed link (§4.2).

        Honours the per-link ``full_probe_cooldown_s``: links this
        monitor full-probed within the cooldown are *not* re-flooded, so
        on a shared fleet monitor, deploying a second application moments
        after the first triggers no duplicate startup flood.  ``force``
        restores the unconditional probe of every link.

        Returns:
            The number of links actually probed.
        """
        probed = 0
        for src, dst, _ in self.netem.topology.iter_directed_links():
            if not self.in_scope(src, dst):
                continue  # region views never flood another region
            if force or self.full_probe_allowed(src, dst):
                self.full_probe(src, dst)
                probed += 1
        return probed

    # -- headroom probing ----------------------------------------------------------

    def headroom_probe(
        self,
        src: str,
        dst: str,
        headroom_mbps: float,
        *,
        reuse_s: Optional[float] = None,
    ) -> ProbeResult:
        """Check that ``headroom_mbps`` of spare capacity exists on the
        direct link, injecting only a small probe (never a flood).

        When the link was headroom-probed within ``reuse_s`` seconds
        (default: the config's ``headroom_reuse_s``), the cached
        measurement is served instead of injecting fresh traffic — the
        ``headroom_ok`` verdict is re-evaluated against *this* caller's
        requirement, so tenants with different headroom needs share one
        measurement.  Cache hits are not probe events: they are counted
        in ``headroom_cache_hits`` and do not enter ``probe_log``.
        """
        key = (self.region, src, dst)
        if reuse_s is None:
            reuse_s = self.config.headroom_reuse_s
        if reuse_s > 0:
            recent = self._last_headroom.get(key)
            if recent is not None and self.netem.now - recent.time < reuse_s:
                self.headroom_cache_hits += 1
                return replace(
                    recent,
                    headroom_ok=recent.available_mbps >= headroom_mbps,
                )
        cached = self._capacity_cache.get(
            (src, dst), self.netem.capacity(src, dst)
        )
        probe_rate = min(
            cached * self.config.headroom_probe_fraction, headroom_mbps
        )
        self._inject_probe_traffic(src, dst, probe_rate)
        available = self.netem.available_bandwidth(src, dst)
        self.headroom_probe_count += 1
        result = ProbeResult(
            kind="headroom",
            src=src,
            dst=dst,
            time=self.netem.now,
            capacity_mbps=cached,
            available_mbps=available,
            headroom_ok=available >= headroom_mbps,
        )
        self._last_headroom[key] = result
        self.probe_log.append(result)
        if self.tracer.enabled:
            self._probe_event_ids[key] = self.tracer.emit(
                "probe.headroom",
                result.time,
                src=src,
                dst=dst,
                capacity_mbps=cached,
                available_mbps=available,
                required_mbps=headroom_mbps,
                headroom_ok=result.headroom_ok,
            )
        return result

    def probe_event_id(self, src: str, dst: str) -> Optional[int]:
        """Trace-event id of the link's most recent probe *by this
        monitor's region* (None when the link was never probed under an
        enabled tracer)."""
        return self._probe_event_ids.get((self.region, src, dst))

    # -- cached views (what the scheduler/controller believe) ---------------------

    def cached_capacity(self, src: str, dst: str) -> float:
        """Last full-probe capacity of the direct link (or live value if
        the link was never probed)."""
        key = (src, dst)
        if key in self._capacity_cache:
            return self._capacity_cache[key]
        return self.netem.capacity(src, dst)

    def cached_path_capacity(self, src: str, dst: str) -> float:
        """Bottleneck of cached link capacities along the route."""
        path = self.netem.router.traceroute(src, dst)
        if len(path) == 1:
            return float("inf")
        return min(self.cached_capacity(a, b) for a, b in zip(path, path[1:]))

    def cache_age(self, src: str, dst: str) -> float:
        """Seconds since the link's capacity was last full-probed."""
        key = (src, dst)
        if key not in self._cache_time:
            return float("inf")
        return self.netem.now - self._cache_time[key]

    def invalidate_cache(self, src: str, dst: str) -> None:
        self._capacity_cache.pop((src, dst), None)
        self._cache_time.pop((src, dst), None)

    # -- passive measurement ----------------------------------------------------------

    def goodput(self, flow_id: str) -> float:
        """Achieved/offered fraction for an application flow (§3.2.2)."""
        if not self.netem.has_flow(flow_id):
            return 1.0
        return self.netem.flow(flow_id).goodput_fraction

    # -- overhead accounting (§6.3.4) ----------------------------------------------------

    def probe_events_per_hour(self) -> float:
        """Probe events (full + headroom) per simulated hour so far."""
        if self.netem.now <= 0:
            return 0.0
        return len(self.probe_log) * 3600.0 / self.netem.now

    def probe_overhead_fraction(self) -> float:
        """Probe traffic as a fraction of all traffic carried so far."""
        by_tag = self.netem.offered_mbit_by_tag()
        probe = by_tag.get("probe", 0.0)
        total = sum(by_tag.values())
        if total <= 0:
            return 0.0
        return probe / total

    def links_of_path(self, src: str, dst: str) -> list[tuple[str, str]]:
        """Directed link keys along the route (for per-link probing).

        An unroutable pair (crashed node, partition) has no links to
        probe — probing requires a path to send traffic over.
        """
        try:
            path = self.netem.router.traceroute(src, dst)
        except RoutingError:
            return []
        if len(path) == 1:
            return []
        links = list(zip(path, path[1:]))
        if self.scope is None:
            return links
        # A region view only probes the links it owns; segments of a
        # path that cross into another region are that region's to
        # observe.
        return [(a, b) for a, b in links if self.in_scope(a, b)]

    def validate_link(self, src: str, dst: str) -> None:
        if not self.netem.topology.has_link(src, dst):
            raise TopologyError(f"no direct link {src}->{dst}")
