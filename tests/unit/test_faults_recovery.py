"""Crash recovery: eviction, re-placement, and exact ledger accounting."""

import pytest

from repro.config import BassConfig
from repro.core.controlplane import check_cluster_ledger
from repro.experiments.common import build_env, deploy_app, run_timeline
from repro.experiments.multi_tenant import SINK, SOURCE, StreamPairApp
from repro.faults import (
    FailureDetector,
    FaultInjector,
    FaultPlan,
    HeartbeatConfig,
    NodeCrash,
)
from repro.mesh.node import MeshNode
from repro.mesh.topology import MeshTopology, full_mesh_topology
from repro.obs.trace import Tracer

CONFIG = HeartbeatConfig(
    interval_s=5.0, suspect_after_misses=2, confirm_after_misses=4
)
NO_MIGRATIONS = BassConfig(migrations_enabled=False)


def wire_recovery(env, crash_node, *, at_s=30.0):
    plan = FaultPlan([NodeCrash(at_s=at_s, node=crash_node)])
    injector = FaultInjector(plan, env.netem, tracer=env.tracer)
    injector.install()
    detector = FailureDetector(
        env.netem, "node1", config=CONFIG, injector=injector,
        tracer=env.tracer,
    )
    detector.start()
    coordinator = env.control_plane.enable_recovery(detector)
    return detector, coordinator


class TestCrashEvictRecover:
    def test_pod_replaced_and_ledger_exact(self):
        """Satellite regression: deploy → crash-evict → recover leaves
        the cluster ledger clean, with the dead node's resources
        released and the target charged exactly once."""
        env = build_env(full_mesh_topology(3), seed=5, with_traces=False)
        handle = deploy_app(
            env,
            StreamPairApp("app", source_node="node1"),
            "bass-longest-path",
            config=NO_MIGRATIONS,
            force_assignments={SINK: "node2"},
        )
        _, coordinator = wire_recovery(env, "node2")
        run_timeline(env, 120.0)

        assert coordinator.recovered_count == 1
        assert coordinator.failed_count == 0
        action = coordinator.actions[0]
        assert action.from_node == "node2"
        assert action.to_node in {"node1", "node3"}
        assert handle.deployment.node_of(SINK) == action.to_node

        check_cluster_ledger(env.cluster)
        # Eviction released the dead node's ledger entry...
        assert env.cluster.node("node2").allocated.cpu == 0.0
        assert env.cluster.node("node2").allocated.memory_mb == 0.0
        # ...and the fleet total is exactly the two deployed pods.
        total = sum(
            env.cluster.node(n).allocated.cpu
            for n in ("node1", "node2", "node3")
        )
        assert total == pytest.approx(2.0)

    def test_traffic_flows_again_after_restart(self):
        env = build_env(full_mesh_topology(3), seed=5, with_traces=False)
        handle = deploy_app(
            env,
            StreamPairApp("app", source_node="node1"),
            "bass-longest-path",
            config=NO_MIGRATIONS,
            force_assignments={SINK: "node2"},
        )
        wire_recovery(env, "node2")
        run_timeline(env, 120.0)
        assert handle.binding.goodput(SOURCE, SINK) == pytest.approx(1.0)
        assert handle.binding.unroutable_edges == set()

    def test_stranded_pod_when_nothing_fits(self):
        """No surviving node can take the pod: the recovery is recorded
        as failed, the binding stays on the dead node, and the ledger is
        still consistent (no phantom release or double-charge)."""
        topo = MeshTopology()
        topo.add_node(MeshNode("node1", cpu_cores=1.0, memory_mb=1024))
        topo.add_node(MeshNode("node2", cpu_cores=1.0, memory_mb=1024))
        topo.add_node(MeshNode("node3", cpu_cores=0.5, memory_mb=1024))
        for a, b in (("node1", "node2"), ("node2", "node3"),
                     ("node1", "node3")):
            topo.add_link(a, b, capacity_mbps=25.0)
        env = build_env(topo, seed=5, with_traces=False)
        handle = deploy_app(
            env,
            StreamPairApp("app", source_node="node1"),
            "bass-longest-path",
            config=NO_MIGRATIONS,
            force_assignments={SINK: "node2"},
        )
        _, coordinator = wire_recovery(env, "node2")
        run_timeline(env, 120.0)

        assert coordinator.recovered_count == 0
        assert coordinator.failed_count == 1
        assert coordinator.actions[0].to_node is None
        assert handle.deployment.node_of(SINK) == "node2"
        check_cluster_ledger(env.cluster)
        assert env.cluster.node("node2").allocated.cpu == pytest.approx(1.0)


class TestMultiTenantRecovery:
    def test_arbiter_serializes_two_tenants(self):
        env = build_env(full_mesh_topology(4), seed=5, with_traces=False)
        handles = [
            deploy_app(
                env,
                StreamPairApp(f"tenant{i}", source_node="node1"),
                "bass-longest-path",
                config=NO_MIGRATIONS,
                force_assignments={SINK: "node2"},
            )
            for i in range(2)
        ]
        _, coordinator = wire_recovery(env, "node2")
        run_timeline(env, 120.0)

        assert coordinator.recovered_count == 2
        targets = [a.to_node for a in coordinator.actions]
        # One recovery round: the second tenant was deflected off the
        # first tenant's claim, so they land on different nodes.
        assert len(set(targets)) == 2
        assert env.control_plane.arbiter.conflict_count >= 1
        check_cluster_ledger(env.cluster)
        for handle in handles:
            assert handle.deployment.node_of(SINK) != "node2"


class TestTraceChain:
    def test_plan_cites_confirmation_and_restart_cites_plan(self):
        tracer = Tracer()
        env = build_env(
            full_mesh_topology(3), seed=5, with_traces=False, tracer=tracer
        )
        deploy_app(
            env,
            StreamPairApp("app", source_node="node1"),
            "bass-longest-path",
            config=NO_MIGRATIONS,
            force_assignments={SINK: "node2"},
        )
        wire_recovery(env, "node2")
        run_timeline(env, 120.0)

        by_kind = {}
        for event in tracer.events:
            by_kind.setdefault(event.kind, event)
        plan = by_kind["recovery.plan"]
        assert plan.cause == by_kind["node.confirmed_dead"].id
        restart = by_kind["restart"]
        assert restart.cause == plan.id
        assert restart.data["reason"] == "crash recovery"
