"""Workload models: the three applications of the paper's evaluation.

* :mod:`repro.apps.video` — Pion-like SFU video conferencing (network
  bound; per-client bitrate is the metric).
* :mod:`repro.apps.camera` — the camera-processing pipeline of Fig 9
  (bandwidth intensive, CPU bound at the detector; end-to-end frame
  latency is the metric).
* :mod:`repro.apps.social` — a DeathStarBench-like social network of 27
  microservices (RPC heavy; end-to-end request latency is the metric).
* :mod:`repro.apps.workload` — open-loop arrival processes (fixed rate
  and exponential/Poisson).
"""

from .base import Application
from .camera import CameraPipelineApp
from .social import SocialNetworkApp
from .video import VideoConferenceApp
from .workload import ExponentialArrivals, FixedRate

__all__ = [
    "Application",
    "CameraPipelineApp",
    "ExponentialArrivals",
    "FixedRate",
    "SocialNetworkApp",
    "VideoConferenceApp",
]
