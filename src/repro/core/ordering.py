"""Component-ordering heuristics (Algorithms 1 and 2).

Both heuristics linearize the application DAG so that adjacent
components in the output order are the ones that most benefit from
co-location (§3.2.1): "A component ordering a, b, c implies that either
a and b, or b and c, or all three, should be co-located."

* :func:`breadth_first_order` — Algorithm 1.  A modified BFS from the
  topologically-first component, greedily exploring edges in order of
  decreasing *accumulated* bandwidth; suits applications with high
  fan-out (producers next to their heaviest consumers).
* :func:`longest_path_order` — Algorithm 2.  Repeatedly extracts the
  most bandwidth-intensive (maximum weight-sum) path and emits its
  components consecutively; suits linear pipelines such as the
  frontend–service–cache–database chains of the social network.

Pseudocode repairs (documented in DESIGN.md §5): Algorithm 2's listing
backtracks with ``componentOrder.Append(nextVertex)``, which as written
drops the path's leaf and emits the path reversed — contradicting the
worked example in Fig 6 whose longest-path order is ``1,2,4,5,7,3,6``
(start → leaf).  We emit the extracted path start → leaf, leaf included.
"""

from __future__ import annotations

from ..errors import DagError
from .dag import ComponentDAG


def breadth_first_order(dag: ComponentDAG, source: str | None = None) -> list[str]:
    """Algorithm 1: modified breadth-first traversal.

    From the source (the first component in topological order), explore
    the DAG breadth-first; the frontier queue is re-sorted before every
    expansion by *decreasing accumulated path bandwidth* (the sum of
    edge weights from the source), so the heaviest data paths are packed
    first.  Disconnected or unreachable components are appended by
    restarting from the next unvisited component in topological order,
    so the result is always a permutation of all components.

    Complexity: O((|V|+|E|) + |V|² log |V|) — the per-step queue sort
    dominates, as the paper notes.

    Args:
        dag: validated component DAG.
        source: optional explicit start; defaults to the topologically
            first component.

    Returns:
        All component names, in packing order.
    """
    if len(dag) == 0:
        return []
    topo = dag.topological_sort()
    if source is not None and source not in dag:
        raise DagError(f"unknown source component {source!r}")

    visited: set[str] = set()
    order: list[str] = []
    accumulated: dict[str, float] = {}

    def run_from(start: str) -> None:
        visited.add(start)
        accumulated[start] = 0.0
        queue: list[str] = [start]
        while queue:
            current = queue.pop(0)
            order.append(current)
            deps = dag.dependencies(current)
            # Explore edges in decreasing edge-bandwidth order.
            for dep in sorted(deps, key=lambda d: (-deps[d], d)):
                if dep not in visited:
                    visited.add(dep)
                    accumulated[dep] = accumulated[current] + deps[dep]
                    queue.append(dep)
            # Re-sort the frontier by decreasing accumulated bandwidth
            # (Algorithm 1 line 8), name as deterministic tie-break.
            queue.sort(key=lambda name: (-accumulated[name], name))

    first = source if source is not None else topo[0]
    run_from(first)
    for name in topo:
        if name not in visited:
            run_from(name)
    return order


def _longest_paths_from(
    dag: ComponentDAG, start: str, visited: set[str]
) -> tuple[dict[str, str], dict[str, float]]:
    """Weighted longest-path DP from ``start`` over unvisited vertices.

    Processes vertices reachable from ``start`` in topological order, so
    each distance is the true maximum weight-sum path ("the paths with
    the largest sum of edge weights", §3.2.1).

    Returns:
        (parents, distance) maps over reachable unvisited vertices.
    """
    distance: dict[str, float] = {start: 0.0}
    parents: dict[str, str] = {}
    for name in dag.topological_sort():
        if name not in distance or name in visited and name != start:
            continue
        for dep, weight in dag.dependencies(name).items():
            if dep in visited:
                continue
            candidate = distance[name] + weight
            if candidate > distance.get(dep, float("-inf")):
                distance[dep] = candidate
                parents[dep] = name
    return parents, distance


def longest_path_order(dag: ComponentDAG) -> list[str]:
    """Algorithm 2: repeatedly extract the most bandwidth-intensive path.

    Starting from the topologically first unvisited component, find the
    maximum weight-sum path among unvisited vertices, emit it start→leaf,
    mark it visited, and repeat from the next unvisited component until
    every component is ordered.

    Complexity: O(|V| (|V|+|E|)) — one traversal per extracted path.

    Returns:
        All component names, in packing order.
    """
    if len(dag) == 0:
        return []
    topo = dag.topological_sort()
    visited: set[str] = set()
    order: list[str] = []

    def next_unvisited() -> str | None:
        for name in topo:
            if name not in visited:
                return name
        return None

    start = topo[0]
    while len(order) < len(dag):
        parents, distance = _longest_paths_from(dag, start, visited)
        # Farthest vertex by weight-sum; name as deterministic tie-break.
        last = min(distance, key=lambda name: (-distance[name], name))
        path = [last]
        while last != start:
            last = parents[last]
            path.append(last)
        path.reverse()
        for name in path:
            visited.add(name)
            order.append(name)
        nxt = next_unvisited()
        if nxt is None:
            break
        start = nxt
    return order


def _reachable_unvisited(
    dag: ComponentDAG, start: str, visited: set[str]
) -> set[str]:
    """Vertices reachable from ``start`` through unvisited vertices."""
    region = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for dep in dag.dependencies(current):
            if dep not in visited and dep not in region:
                region.add(dep)
                frontier.append(dep)
    return region


def _bfs_region(
    dag: ComponentDAG, start: str, region: set[str], visited: set[str]
) -> list[str]:
    """Algorithm 1's traversal restricted to one region."""
    order: list[str] = []
    accumulated = {start: 0.0}
    visited.add(start)
    queue = [start]
    while queue:
        current = queue.pop(0)
        order.append(current)
        deps = dag.dependencies(current)
        for dep in sorted(deps, key=lambda d: (-deps[d], d)):
            if dep in region and dep not in visited:
                visited.add(dep)
                accumulated[dep] = accumulated[current] + deps[dep]
                queue.append(dep)
        queue.sort(key=lambda name: (-accumulated[name], name))
    return order


def hybrid_order(
    dag: ComponentDAG, *, fanout_threshold: int = 3
) -> list[str]:
    """§8's suggested combination of the two heuristics.

    "It is possible that a subgraph of the application may have high
    fanout, and another part could be a deeper pipeline.  A potential
    avenue of future research is combining the two heuristics depending
    on the application specifics."

    The order is built region by region: from the topologically first
    unvisited component, examine the reachable unvisited region.  A
    region whose widest fan-out reaches ``fanout_threshold`` is ordered
    breadth-first (producers packed next to their heaviest consumers);
    otherwise the most bandwidth-intensive path is extracted, exactly
    one Algorithm 2 step, and the remainder is re-examined — so a DAG
    that starts as a pipeline and ends in a fan-out is handled by the
    right heuristic on each part.

    Returns:
        All component names, in packing order (a permutation).
    """
    if fanout_threshold < 1:
        raise DagError("fanout_threshold must be >= 1")
    if len(dag) == 0:
        return []
    topo = dag.topological_sort()
    visited: set[str] = set()
    order: list[str] = []

    while len(order) < len(dag):
        start = next(name for name in topo if name not in visited)
        region = _reachable_unvisited(dag, start, visited)
        max_fanout = max(
            sum(1 for dep in dag.dependencies(name) if dep in region)
            for name in region
        )
        if max_fanout >= fanout_threshold:
            order.extend(_bfs_region(dag, start, region, visited))
        else:
            parents, distance = _longest_paths_from(dag, start, visited)
            last = min(distance, key=lambda name: (-distance[name], name))
            path = [last]
            while last != start:
                last = parents[last]
                path.append(last)
            path.reverse()
            for name in path:
                visited.add(name)
                order.append(name)
    return order


def order_components(dag: ComponentDAG, heuristic: str) -> list[str]:
    """Dispatch on the configured heuristic name (§3.2.1 leaves the
    choice of heuristic to the developer; ``hybrid`` implements §8's
    proposed combination)."""
    if heuristic == "bfs":
        return breadth_first_order(dag)
    if heuristic == "longest_path":
        return longest_path_order(dag)
    if heuristic == "hybrid":
        return hybrid_order(dag)
    raise DagError(
        f"unknown ordering heuristic {heuristic!r} "
        "(expected 'bfs', 'longest_path', or 'hybrid')"
    )
