"""Fleet scalability: regionalized control plane under 10x growth.

Sweeps ``tenants x regions`` from 1x1 to 10x4 over regional meshes
(dense neighbourhoods on a thin backbone ring) and checks the two
regionalization guarantees:

* **Per-link probe rate stays flat** — each region's monitor probes
  only its own slice, so growing the fleet adds links *and* probes in
  proportion; probes per intra-region link per hour at 10x4 stay within
  1.3x of the single-tenant, single-region baseline.
* **Decision latency stays flat** — regions plan independently (the
  recorded per-round latency is the max over regions plus arbiter
  resolution), so sharding keeps the per-round decision cost bounded as
  the fleet grows 10x.

A forced handoff-pressure cell exercises the two-phase cross-region
protocol end to end and audits the cluster ledger after the run; the
per-round ledger check (on by default) audits every epoch in between.

Results are written to ``BENCH_fleet.json`` at the repo root (merged
per case, like ``BENCH_emulator.json``) so the trajectory is tracked
across PRs.
"""

import json
import statistics
from pathlib import Path

import pytest

from repro.config import BassConfig, FleetConfig
from repro.core.controlplane import check_cluster_ledger
from repro.experiments.common import build_env
from repro.experiments.fleet import FleetResult, fleet_mesh
from repro.mesh.topology import regional_mesh, regional_specs

from _reporting import fmt, run_once, save_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

#: (regions, tenants) — the 10x scale-up the acceptance criteria track.
GRID = [(1, 1), (2, 5), (4, 10)]
DURATION_S = 240.0

#: Decision-latency floor for the flatness ratio: per-round decisions
#: are tens of microseconds here, far below timer resolution, so the
#: 1.3x bound is asserted against max(baseline, floor).
DECISION_FLOOR_S = 0.0005


def median_decision_s(result: FleetResult) -> float:
    if not result.decision_seconds:
        return 0.0
    return statistics.median(result.decision_seconds)


def case_payload(result: FleetResult) -> dict:
    decisions = sorted(result.decision_seconds)
    p95 = decisions[int(0.95 * (len(decisions) - 1))] if decisions else 0.0
    return {
        "regions": result.regions,
        "tenants": result.tenants,
        "duration_s": result.duration_s,
        "intra_region_links": result.intra_region_links,
        "probe_events_per_hour": result.probe_events_per_hour,
        "probe_events_per_link_hour": result.probe_events_per_link_hour,
        "decision_ms": {
            "median": median_decision_s(result) * 1e3,
            "p95": p95 * 1e3,
        },
        "epochs": result.epoch_count,
        "conflicts": result.conflict_count,
        "handoffs": result.handoff_counts,
        "cross_region_migrations": result.cross_region_migrations,
        "migrations": result.total_migrations,
    }


def persist(results: dict[str, dict]) -> None:
    """Merge the measured cases into BENCH_fleet.json (partial runs
    refresh their cells without dropping the rest)."""
    payload = {
        "schema": 1,
        "unit_note": "probe_events_per_link_hour flat is better; "
        "decision_ms lower is better",
        "cases": {},
    }
    if BENCH_PATH.exists():
        try:
            previous = json.loads(BENCH_PATH.read_text())
            payload["cases"] = previous.get("cases", {})
        except (json.JSONDecodeError, OSError):
            pass
    payload["cases"].update(results)
    payload["cases"] = dict(sorted(payload["cases"].items()))
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.mark.benchmark(group="scalability_fleet")
def test_fleet_probe_and_decision_flatness(benchmark):
    def run():
        return {
            (regions, tenants): fleet_mesh(
                regions=regions, tenants=tenants, duration_s=DURATION_S
            )
            for regions, tenants in GRID
        }

    results = run_once(benchmark, run)
    persist(
        {
            f"r{r}_t{t:02d}": case_payload(result)
            for (r, t), result in results.items()
        }
    )
    save_table(
        "scalability_fleet",
        [
            "regions",
            "tenants",
            "links",
            "probes_per_link_hour",
            "median_decision_ms",
            "conflicts",
            "handoffs",
        ],
        [
            [
                r,
                t,
                result.intra_region_links,
                fmt(result.probe_events_per_link_hour, 1),
                fmt(median_decision_s(result) * 1e3, 3),
                result.conflict_count,
                sum(result.handoff_counts.values()),
            ]
            for (r, t), result in results.items()
        ],
        note="regional meshes (3-node neighbourhoods, backbone ring); "
        "decision latency = max over regions per round + arbiter",
    )
    base = results[GRID[0]]
    for regions, tenants in GRID[1:]:
        cell = results[(regions, tenants)]
        # Probe traffic per link must not grow with fleet size.
        assert (
            cell.probe_events_per_link_hour
            <= 1.3 * base.probe_events_per_link_hour
        )
        # Neither must the per-round decision latency (floored: the
        # absolute numbers are far below timer resolution).
        assert median_decision_s(cell) <= 1.3 * max(
            median_decision_s(base), DECISION_FLOOR_S
        )
    # Steady state: nobody congested, so nobody crossed a region.
    for result in results.values():
        assert result.cross_region_migrations == 0
        assert result.handoff_counts == {}


@pytest.mark.benchmark(group="scalability_fleet")
def test_fleet_handoff_pressure_and_ledger(benchmark):
    """The forced cross-region cell: region 0 packed and throttled, so
    escapes must travel the two-phase handoff; the cluster ledger is
    audited after the run (and every epoch during it)."""
    tenants = 2

    def run():
        topology = regional_mesh(2, 2, cpu_cores=float(tenants))
        fleet = FleetConfig(
            region_specs=regional_specs(2, 2), handoff_rtt_s=2.0
        )
        env = build_env(topology, seed=11, with_traces=False, fleet=fleet)
        result = fleet_mesh(
            regions=2,
            tenants=tenants,
            nodes_per_region=2,
            duration_s=180.0,
            pin_region=0,
            throttle_link_mbps=0.5,
            throttle_at_s=60.0,
            config=BassConfig().with_migration(
                cooldown_s=10.0, restart_seconds=5.0
            ),
            env=env,
        )
        check_cluster_ledger(env.cluster)
        return result

    result = run_once(benchmark, run)
    persist({"handoff_pressure": case_payload(result)})
    save_table(
        "scalability_fleet_handoff",
        ["tenants", "committed", "denied", "aborted", "latency_s"],
        [
            [
                result.tenants,
                result.committed_handoffs,
                result.handoff_counts.get("denied", 0),
                result.handoff_counts.get("aborted", 0),
                fmt(
                    statistics.median(result.handoff_latencies)
                    if result.handoff_latencies
                    else 0.0,
                    1,
                ),
            ]
        ],
        note="2x2-node regions, region 0 packed full and its intra link "
        "throttled to 0.5 Mbps at t=60 s",
    )
    # Every cross-region migration travelled the handoff protocol.
    assert result.committed_handoffs >= 1
    assert result.cross_region_migrations == result.committed_handoffs
    # Racing tenants exercise the denial path.
    assert result.handoff_counts.get("denied", 0) >= 1
