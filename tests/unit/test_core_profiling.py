"""Unit tests for online bandwidth profiling (§8 future work)."""

import pytest

from repro.cluster.deployment import Deployment
from repro.core.binding import DeploymentBinding
from repro.core.dag import Component, ComponentDAG
from repro.core.profiling import OnlineProfiler
from repro.errors import ConfigError
from repro.mesh.topology import full_mesh_topology
from repro.net.netem import NetworkEmulator


def make_binding(weight=5.0):
    dag = ComponentDAG("app")
    dag.add_component(Component("a", cpu=1, memory_mb=10))
    dag.add_component(Component("b", cpu=1, memory_mb=10))
    dag.add_dependency("a", "b", weight)
    deployment = Deployment("app")
    deployment.bind("a", "node1")
    deployment.bind("b", "node2")
    netem = NetworkEmulator(full_mesh_topology(2, capacity_mbps=100.0))
    binding = DeploymentBinding(dag, deployment, netem)
    binding.sync_flows()
    return binding, dag


class TestSampling:
    def test_no_estimate_until_min_samples(self):
        binding, _ = make_binding()
        profiler = OnlineProfiler(binding, min_samples=10)
        for _ in range(9):
            profiler.sample()
        assert profiler.edge_profile("a", "b") is None
        profiler.sample()
        assert profiler.edge_profile("a", "b") is not None

    def test_profile_tracks_offered_demand(self):
        binding, _ = make_binding(weight=5.0)
        profiler = OnlineProfiler(binding, min_samples=5)
        for _ in range(10):
            profiler.sample()
        profile = profiler.edge_profile("a", "b")
        assert profile.mean_mbps == pytest.approx(5.0)
        assert profile.p95_mbps == pytest.approx(5.0)
        assert profile.estimate_mbps == pytest.approx(6.0)  # x1.2 safety

    def test_profile_sees_demand_changes(self):
        binding, _ = make_binding(weight=5.0)
        profiler = OnlineProfiler(
            binding, min_samples=5, window=100, percentile=95.0
        )
        for _ in range(50):
            profiler.sample()
        binding.set_demand_scale("a", "b", 3.0)  # burst to 15 Mbps
        for _ in range(50):
            profiler.sample()
        profile = profiler.edge_profile("a", "b")
        assert profile.peak_mbps == pytest.approx(15.0)
        assert profile.p95_mbps > 5.0

    def test_window_forgets_old_traffic(self):
        binding, _ = make_binding(weight=5.0)
        profiler = OnlineProfiler(binding, min_samples=5, window=20)
        for _ in range(20):
            profiler.sample()
        binding.set_demand_scale("a", "b", 0.2)  # quiesce to 1 Mbps
        for _ in range(20):
            profiler.sample()
        profile = profiler.edge_profile("a", "b")
        assert profile.peak_mbps == pytest.approx(1.0)

    def test_coverage(self):
        binding, _ = make_binding()
        profiler = OnlineProfiler(binding, min_samples=5)
        assert profiler.coverage() == 0.0
        for _ in range(5):
            profiler.sample()
        assert profiler.coverage() == 1.0


class TestApply:
    def test_apply_updates_dag_annotations(self):
        binding, dag = make_binding(weight=5.0)
        profiler = OnlineProfiler(binding, min_samples=5)
        binding.set_demand_scale("a", "b", 2.0)  # real traffic is 10
        binding.sync_flows()
        for _ in range(10):
            profiler.sample()
        updates = profiler.apply()
        assert updates[("a", "b")] == pytest.approx(12.0)  # 10 x 1.2
        assert dag.weight("a", "b") == pytest.approx(12.0)

    def test_apply_does_not_change_offered_demand(self):
        # Profiling updates the *requirement* view; what the app sends
        # stays anchored to the deploy-time annotations — no feedback
        # loop of requirement -> demand -> bigger requirement.
        binding, dag = make_binding(weight=5.0)
        profiler = OnlineProfiler(binding, min_samples=5)
        for _ in range(10):
            profiler.sample()
        profiler.apply()
        assert dag.weight("a", "b") == pytest.approx(6.0)
        assert binding.edge_demand("a", "b") == pytest.approx(5.0)
        profiler2 = OnlineProfiler(binding, min_samples=5)
        for _ in range(10):
            profiler2.sample()
        profiler2.apply()
        assert dag.weight("a", "b") == pytest.approx(6.0)  # converged

    def test_apply_skips_undersampled_edges(self):
        binding, dag = make_binding(weight=5.0)
        profiler = OnlineProfiler(binding, min_samples=50)
        profiler.sample()
        assert profiler.apply() == {}
        assert dag.weight("a", "b") == 5.0

    def test_zero_traffic_edge_keeps_positive_requirement(self):
        binding, dag = make_binding(weight=5.0)
        binding.set_demand_override("a", "b", 0.0)
        profiler = OnlineProfiler(binding, min_samples=5)
        for _ in range(10):
            profiler.sample()
        updates = profiler.apply()
        assert updates[("a", "b")] == pytest.approx(0.01)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"percentile": 0.0},
            {"percentile": 101.0},
            {"safety_factor": 0.0},
            {"min_samples": 0},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        binding, _ = make_binding()
        with pytest.raises(ConfigError):
            OnlineProfiler(binding, **kwargs)
