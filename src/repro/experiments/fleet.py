"""Regionalized fleet scenarios: sharded schedulers over one mesh.

The single-loop control plane (``experiments.multi_tenant``) answers
how far one scheduler scales; this module answers what happens when the
mesh outgrows it.  A :func:`~repro.mesh.topology.regional_mesh` of
dense neighbourhoods joined by a thin backbone is split into regions,
each running its own observe/plan/act loop over a region-scoped monitor
view, with the fleet arbiter resolving claim batches eventually
consistently and brokering cross-region migrations through the
two-phase handoff protocol.

Two scenario shapes:

* :func:`fleet_mesh` — steady-state scaling: tenants spread round-robin
  across regions, no congestion.  The claim to verify is flatness —
  per-link probe rate and per-round decision latency must not grow as
  ``tenants x regions`` scales up (each region only probes and plans
  over its own slice).
* :func:`fleet_handoff` — forced cross-region pressure: every tenant is
  homed in region 0, the region's only intra-region link is throttled,
  and its ledger is packed full, so the only escape is a handoff into
  region 1.  Exercises request → release → admit → commit end to end,
  plus denial when two tenants race for the same remote node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Optional

from ..config import BassConfig, FleetConfig
from ..core.controller import ControllerIteration
from ..mesh.topology import regional_mesh, regional_specs
from .common import (
    AppHandle,
    ExperimentEnv,
    build_env,
    deploy_app,
    run_timeline,
)
from .multi_tenant import SINK, StreamPairApp, fleet_probe_stats


@dataclass
class FleetResult:
    """Fleet-level accounting of one regionalized run."""

    regions: int
    tenants: int
    duration_s: float
    full_probes: int
    headroom_probes: int
    probe_events_per_hour: float
    #: Links inside some region's jurisdiction (the probed set; backbone
    #: links between regions are never flooded by a region's monitor).
    intra_region_links: int
    epoch_count: int
    #: Per-fleet-round decision latency: max over regions of plan+act
    #: wall time (regions run in parallel) plus arbiter resolution.
    decision_seconds: list[float]
    conflict_count: int
    #: Handoff records by phase (terminal phases after the run settles).
    handoff_counts: dict[str, int] = field(default_factory=dict)
    handoff_latencies: list[float] = field(default_factory=list)
    migrations_by_app: dict[str, int] = field(default_factory=dict)
    #: Migrations whose source and target lie in different regions —
    #: every one must have travelled through the handoff protocol.
    cross_region_migrations: int = 0
    tenants_by_region: dict[str, int] = field(default_factory=dict)
    iterations_by_app: dict[str, list[ControllerIteration]] = field(
        default_factory=dict
    )

    @property
    def total_migrations(self) -> int:
        return sum(self.migrations_by_app.values())

    @property
    def probe_events_per_link_hour(self) -> float:
        """Per-link probe rate — the quantity that must stay flat as the
        fleet grows (total probes scale with links, not with tenants)."""
        if self.intra_region_links == 0:
            return 0.0
        return self.probe_events_per_hour / self.intra_region_links

    @property
    def committed_handoffs(self) -> int:
        return self.handoff_counts.get("committed", 0)


@dataclass
class PreparedFleet:
    """A built fleet substrate the caller drives (and may checkpoint).

    :func:`prepare_fleet` assembles tenants and timeline events in the
    exact order :func:`fleet_mesh` always has, so a prepared run's
    decisions are byte-identical to the one-shot path.
    """

    env: ExperimentEnv
    handles: list[AppHandle]
    events: list
    regions: int
    tenants: int

    def result(self, duration_s: float) -> FleetResult:
        """Assemble the fleet accounting after the clock has run."""
        env = self.env
        handles = self.handles
        cp = env.control_plane
        full, headroom, _, per_hour = fleet_probe_stats(
            handles, duration_s
        )
        arbiter = cp.arbiter
        region_map = cp.region_map
        intra_links = sum(
            1
            for link in env.topology.links
            if region_map.region_of(link.id[0])
            == region_map.region_of(link.id[1])
        )
        cross = 0
        for handle in handles:
            for record in handle.deployment.migrations:
                if region_map.region_of(
                    record.from_node
                ) != region_map.region_of(record.to_node):
                    cross += 1
        tenants_by_region: dict[str, int] = {}
        for handle in handles:
            home = cp.home_region(handle.app.name)
            tenants_by_region[home] = tenants_by_region.get(home, 0) + 1
        return FleetResult(
            regions=self.regions,
            tenants=self.tenants,
            duration_s=duration_s,
            full_probes=full,
            headroom_probes=headroom,
            probe_events_per_hour=per_hour,
            intra_region_links=intra_links,
            epoch_count=arbiter.epoch_count,
            decision_seconds=list(cp.epoch_decision_seconds),
            conflict_count=arbiter.conflict_count,
            handoff_counts=arbiter.handoff_counts(),
            handoff_latencies=[
                request.latency_s
                for request in arbiter.handoffs
                if request.latency_s is not None
            ],
            migrations_by_app={
                h.app.name: len(h.deployment.migrations) for h in handles
            },
            cross_region_migrations=cross,
            tenants_by_region=tenants_by_region,
            iterations_by_app={
                h.app.name: h.controller.iterations
                for h in handles
                if h.controller is not None
            },
        )


def prepare_fleet(
    *,
    regions: int = 2,
    tenants: int = 4,
    nodes_per_region: int = 3,
    seed: int = 11,
    demand_mbps: float = 2.0,
    node_cpu_cores: float = 8.0,
    handoff_rtt_s: float = 2.0,
    pin_region: Optional[int] = None,
    throttle_link_mbps: Optional[float] = None,
    throttle_at_s: float = 60.0,
    use_partitioner: bool = False,
    fleet: Optional[FleetConfig] = None,
    config: Optional[BassConfig] = None,
    env: Optional[ExperimentEnv] = None,
) -> PreparedFleet:
    """Build the regionalized fleet substrate of :func:`fleet_mesh`.

    Tenants are dealt round-robin across regions (tenant ``i`` lives in
    region ``i % regions``): its source is pinned at the region gateway
    ``r{k}n1`` and its sink starts on ``r{k}n2`` (on the gateway itself
    in single-node regions), so every tenant's traffic is intra-region
    until congestion pushes it out.

    Args:
        regions: number of regions (each a dense full-mesh
            neighbourhood; gateways joined by a backbone ring).
        tenants: total tenants across the fleet.
        pin_region: home *every* tenant in this region instead of
            round-robin (the handoff-pressure scenarios).
        throttle_link_mbps: tc-style limit imposed at ``throttle_at_s``
            on the home region's ``r{k}n1 -> r{k}n2`` link — congestion
            that cannot be escaped over the same link, so the planner
            must look at other nodes (and, with the region packed full,
            other regions).
        use_partitioner: derive regions with the deterministic
            partitioner (``FleetConfig.regions``) instead of the
            explicit specs matching the builder's layout.
        env: reuse a pre-built substrate (must be regionalized).
    """
    if env is None:
        topology = regional_mesh(
            regions, nodes_per_region, cpu_cores=node_cpu_cores
        )
        if fleet is None:
            if use_partitioner:
                fleet = FleetConfig(
                    regions=regions, handoff_rtt_s=handoff_rtt_s
                )
            else:
                fleet = FleetConfig(
                    region_specs=regional_specs(regions, nodes_per_region),
                    handoff_rtt_s=handoff_rtt_s,
                )
        env = build_env(
            topology=topology, seed=seed, with_traces=False, fleet=fleet
        )
    handles: list[AppHandle] = []
    for index in range(tenants):
        home = pin_region if pin_region is not None else index % regions
        source = f"r{home}n1"
        sink = f"r{home}n2" if nodes_per_region >= 2 else source
        app = StreamPairApp(
            f"tenant{index:02d}",
            demand_mbps=demand_mbps,
            source_node=source,
        )
        handles.append(
            deploy_app(
                env,
                app,
                "bass-longest-path",
                config=config,
                force_assignments={SINK: sink},
            )
        )
    events = []
    if throttle_link_mbps is not None:
        throttled = sorted(
            {
                (f"r{k}n1", f"r{k}n2")
                for k in (
                    {pin_region}
                    if pin_region is not None
                    else {i % regions for i in range(tenants)}
                )
            }
        )
        for src, dst in throttled:
            if nodes_per_region < 2:
                continue
            link = env.topology.link(src, dst)
            events.append(
                (
                    throttle_at_s,
                    partial(
                        link.set_rate_limit,
                        throttle_link_mbps,
                        src=src,
                        dst=dst,
                    ),
                )
            )
    return PreparedFleet(
        env=env,
        handles=handles,
        events=events,
        regions=regions,
        tenants=tenants,
    )


def fleet_mesh(
    *,
    regions: int = 2,
    tenants: int = 4,
    nodes_per_region: int = 3,
    duration_s: float = 240.0,
    seed: int = 11,
    demand_mbps: float = 2.0,
    node_cpu_cores: float = 8.0,
    handoff_rtt_s: float = 2.0,
    pin_region: Optional[int] = None,
    throttle_link_mbps: Optional[float] = None,
    throttle_at_s: float = 60.0,
    use_partitioner: bool = False,
    fleet: Optional[FleetConfig] = None,
    config: Optional[BassConfig] = None,
    env: Optional[ExperimentEnv] = None,
) -> FleetResult:
    """Run a regionalized fleet of stream-pair tenants (see
    :func:`prepare_fleet` for the substrate and argument details)."""
    prepared = prepare_fleet(
        regions=regions,
        tenants=tenants,
        nodes_per_region=nodes_per_region,
        seed=seed,
        demand_mbps=demand_mbps,
        node_cpu_cores=node_cpu_cores,
        handoff_rtt_s=handoff_rtt_s,
        pin_region=pin_region,
        throttle_link_mbps=throttle_link_mbps,
        throttle_at_s=throttle_at_s,
        use_partitioner=use_partitioner,
        fleet=fleet,
        config=config,
        env=env,
    )
    run_timeline(prepared.env, duration_s, events=prepared.events)
    return prepared.result(duration_s)


def fleet_handoff(
    *,
    tenants: int = 2,
    duration_s: float = 180.0,
    seed: int = 11,
    handoff_rtt_s: float = 2.0,
) -> FleetResult:
    """The cross-region pressure scenario: region 0 must hand off.

    Two-node regions with just enough CPU for the tenants homed there:
    ``tenants`` stream pairs pack region 0 completely (sources fill the
    gateway, sinks fill the second node).  At t=60 s the region's only
    intra-region link is throttled below the tenants' demand — every
    sink is in violation, no region-0 node can fit an escape, and the
    planner escalates across the boundary.  Region 1 is idle and has
    room, so handoffs release, admit, and commit there; two tenants
    racing for the same remote node exercise the denial path.
    """
    config = BassConfig().with_migration(cooldown_s=10.0, restart_seconds=5.0)
    return fleet_mesh(
        regions=2,
        tenants=tenants,
        nodes_per_region=2,
        duration_s=duration_s,
        seed=seed,
        demand_mbps=2.0,
        node_cpu_cores=float(tenants),
        handoff_rtt_s=handoff_rtt_s,
        pin_region=0,
        throttle_link_mbps=0.5,
        throttle_at_s=60.0,
        config=config,
    )
