"""Integration tests for the live status plane.

The tentpole guarantees: a ticking churn run exposes real metrics and a
crash-aware status document over HTTP; an induced probe-rate spike
produces an ``slo.breach`` the report renders with its cause chain; and
the streaming trace backend is byte-identical to the buffered one on a
real experiment.
"""

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.cli import main
from repro.obs.report import render_report
from repro.obs.serve import (
    LiveRun,
    attach_status_plane,
    build_scenario,
    start_server,
)
from repro.obs.slo import SloRule
from repro.obs.stream import StreamingSink
from repro.obs.trace import Tracer, read_trace, set_default_tracer


def _get(server, path):
    host, port = server.server_address[:2]
    with urlopen(f"http://{host}:{port}{path}", timeout=10) as response:
        return response.status, response.headers, response.read().decode()


def _live_churn(tmp_path, tracer, **plane_kwargs):
    scenario = build_scenario("churn", quick=True)
    plane = attach_status_plane(
        scenario.env.control_plane,
        tracer,
        status_path=tmp_path / "status.json",
        every_k_epochs=2,
        **plane_kwargs,
    )
    return LiveRun(scenario, plane)


@pytest.fixture()
def live_churn(tmp_path):
    """A served quick churn run, stepped under test control."""
    tracer = Tracer.with_instruments()
    previous = set_default_tracer(tracer)
    server = None
    try:
        live = _live_churn(tmp_path, tracer)
        server = start_server(live, port=0)
        live.start()
        yield live, server, live.plane
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        set_default_tracer(previous)


class TestLiveEndpoints:
    def test_metrics_and_status_track_the_run(self, live_churn):
        live, server, plane = live_churn

        # Before the crash: probes and rolling gauges are live.
        live.step(45.0)
        status, headers, body = _get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "bass_probes_total" in body
        assert 'bass_rolling_probe_rate_per_second{scope="fleet"}' in body
        # The emulator's tick profile rides along as transient gauges.
        assert "bass_tick_count 4" in body  # 45 ticks so far
        assert 'bass_tick_phase_seconds{phase="solve"}' in body
        assert "bass_solver_full_solves" in body
        assert body.endswith("# EOF\n")

        code, _, epoch_body = _get(server, "/v1/epoch")
        epoch_doc = json.loads(epoch_body)
        assert code == 200
        assert epoch_doc["epoch"] >= 1
        assert epoch_doc["done"] is False

        # Crash at t=60; run to the horizon so detection + recovery and
        # at least one publish boundary have passed.
        live.step(live.scenario.duration_s)
        assert live.done
        code, headers, status_body = _get(server, "/v1/status")
        assert code == 200
        assert headers["Content-Type"] == "application/json"
        document = json.loads(status_body)
        assert document["version"] == 1
        (region,) = document["regions"]
        assert region["health"] == "degraded"
        assert "node2" in region["down_nodes"]
        assert document["recovery"]["recovered"] >= 1
        # The crash-evicted sink was re-placed off the dead node.
        for tenant in document["tenants"]:
            assert "node2" not in tenant["placements"].values()

        # Detection latency flowed into the rolling windows + /metrics.
        _, _, body = _get(server, "/metrics")
        assert "bass_node_failures_detected_total 1" in body
        assert "bass_rolling_detection_latency_p95_seconds" in body

        live.finish()
        on_disk = json.loads(plane.publisher.path.read_text())
        assert on_disk["revision"] == plane.publisher.revision

    def test_crash_reflected_within_k_epochs_of_detection(self, live_churn):
        live, server, plane = live_churn
        # Step epoch-by-epoch past the crash until the detector confirms.
        detected_at = None
        while not live.done:
            live.step(30.0)
            _, _, body = _get(server, "/metrics")
            if "bass_node_failures_detected_total 1" in body:
                detected_at = live.engine.now
                break
        assert detected_at is not None
        # Within k=2 further epochs the published document must show it.
        live.step(2 * 30.0)
        _, _, status_body = _get(server, "/v1/status")
        document = json.loads(status_body)
        assert "node2" in document["regions"][0]["down_nodes"]
        assert document["recovery"] is not None

    def test_unknown_path_is_404_and_health_is_200(self, live_churn):
        _, server, _ = live_churn
        code, _, body = _get(server, "/health")
        assert code == 200 and json.loads(body) == {"ok": True}
        with pytest.raises(HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404


class TestSloBreachPipeline:
    def test_probe_spike_breaches_and_report_renders_cause(self, tmp_path):
        tracer = Tracer.with_instruments()
        previous = set_default_tracer(tracer)
        try:
            live = _live_churn(
                tmp_path,
                tracer,
                # An absurdly low ceiling: the first epoch's ordinary
                # probe activity is the "spike" that must trip it.
                rules=(
                    SloRule(
                        "probe-rate-ceiling",
                        "probe_rate",
                        max_value=1e-6,
                        description="test ceiling",
                    ),
                ),
            )
            live.start()
            live.step(65.0)  # two epochs: breach evaluated at each end
            breaches = tracer.events_of_kind("slo.breach")
            assert len(breaches) == 1  # edge-triggered, not re-emitted
            breach = breaches[0]
            assert breach.data["rule"] == "probe-rate-ceiling"
            assert breach.cause is not None
            # The cited cause is real probe activity from the run.
            by_id = {event.id: event for event in tracer.events}
            assert by_id[breach.cause].kind in (
                "probe.headroom", "probe.max_capacity"
            )
            # And the watchdog's state reaches status.json.
            live.finish()
            document = json.loads((tmp_path / "status.json").read_text())
            assert document["slo"]["breach_count"] == 1
            (active,) = document["slo"]["active_breaches"]
            assert active["rule"] == "probe-rate-ceiling"

            report = render_report(tracer.events)
            assert "slo breaches: 1" in report
            assert "SLO probe-rate-ceiling breached" in report
            assert "caused-by" in report
        finally:
            set_default_tracer(previous)


class TestStreamingGoldenEquivalence:
    def test_fig13_shards_concatenate_to_legacy_trace(self, tmp_path):
        # One real traced run (trace events embed wall-clock scheduler
        # timings, so byte-identity only holds for one event stream fed
        # through both backends, not across two runs).
        legacy = tmp_path / "fig13.jsonl"
        shards = tmp_path / "shards"
        assert main(
            ["run", "fig13", "--quick", "--trace", str(legacy)]
        ) == 0
        events = read_trace(legacy)
        assert len(events) > 100  # a real decision stream, not a stub
        sink = StreamingSink(shards, window=64, shard_events=50)
        for event in events:
            sink.append(event)
        sink.close()
        assert sink.published_shards >= 3  # rotation actually exercised
        concatenated = b"".join(
            shard.read_bytes()
            for shard in sorted(shards.glob("trace-*.jsonl"))
        )
        assert concatenated == legacy.read_bytes()
        # And the report path accepts the shard directory directly.
        assert read_trace(shards) == events

    def test_trace_stream_cli_writes_readable_shards(self, tmp_path):
        shards = tmp_path / "shards"
        assert main(
            ["run", "fig13", "--quick", "--trace-stream", str(shards)]
        ) == 0
        events = read_trace(shards)
        kinds = {event.kind for event in events}
        assert {"probe.headroom", "migration.selected", "restart"} <= kinds
        # The report renders straight off the shard directory.
        assert main(["report", str(shards)]) == 0

    def test_trace_and_trace_stream_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "run", "fig13", "--quick",
                    "--trace", str(tmp_path / "t.jsonl"),
                    "--trace-stream", str(tmp_path / "shards"),
                ]
            )
