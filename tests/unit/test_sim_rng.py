"""Unit tests for seeded RNG streams."""

import pytest

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(seed=7).get("arrivals").random(5)
        b = RngStreams(seed=7).get("arrivals").random(5)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        streams = RngStreams(seed=7)
        a = streams.get("arrivals").random(5)
        b = streams.get("traces").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).get("x").random(5)
        b = RngStreams(seed=2).get("x").random(5)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        streams = RngStreams(seed=0)
        assert streams.get("a") is streams.get("a")

    def test_spawn_derives_independent_family(self):
        parent = RngStreams(seed=3)
        child = parent.spawn("trial-1")
        assert child.seed != parent.seed
        a = child.get("x").random(3)
        b = parent.get("x").random(3)
        assert not (a == b).all()

    def test_spawn_is_deterministic(self):
        a = RngStreams(seed=3).spawn("trial-1").get("x").random(3)
        b = RngStreams(seed=3).spawn("trial-1").get("x").random(3)
        assert (a == b).all()

    def test_seed_property(self):
        assert RngStreams(seed=42).seed == 42


class TestStateRoundTrip:
    """Checkpoint/restore of stream positions (repro.snap depends on
    these invariants for byte-identical resume)."""

    def test_draws_after_restore_match(self):
        original = RngStreams(seed=11)
        original.get("arrivals").random(7)
        original.get("traces").random(3)
        state = original.state_dict()

        restored = RngStreams(seed=11)
        restored.load_state(state)
        for name in ("arrivals", "traces"):
            a = original.get(name).random(5)
            b = restored.get(name).random(5)
            assert (a == b).all()

    def test_streams_created_after_restore_match(self):
        """A name first requested after the restore must be derived
        fresh from the seed, identical to the uninterrupted family."""
        original = RngStreams(seed=11)
        original.get("arrivals").random(7)
        state = original.state_dict()

        restored = RngStreams(seed=11)
        restored.load_state(state)
        a = original.get("late-stream").random(5)
        b = restored.get("late-stream").random(5)
        assert (a == b).all()

    def test_state_is_plain_data(self):
        streams = RngStreams(seed=4)
        streams.get("x").random(2)
        state = streams.state_dict()
        assert state["seed"] == 4
        assert set(state["streams"]) == {"x"}
        assert isinstance(state["streams"]["x"], dict)

    def test_load_clears_stale_streams(self):
        """Streams materialized before load_state but absent from the
        capture are dropped, so later draws rebuild them from seed."""
        family = RngStreams(seed=9)
        family.get("extra").random(100)  # advanced past the capture
        family.load_state(RngStreams(seed=9).state_dict())
        fresh = RngStreams(seed=9).get("extra").random(5)
        assert (family.get("extra").random(5) == fresh).all()

    def test_seed_mismatch_refused(self):
        state = RngStreams(seed=1).state_dict()
        with pytest.raises(ValueError, match="seed"):
            RngStreams(seed=2).load_state(state)
