"""Dynamic component-migration experiments:
Fig 8, Fig 12, Fig 13, Table 1, Fig 14(a)(b), Fig 15(b).

These exercise the full monitoring → trigger → migrate loop under
controlled throttles (microbenchmarks) and under the CityLab-style
trace replay (emulated mesh).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..apps.social import SocialNetworkApp
from ..apps.video import Participant, VideoConferenceApp
from ..cluster.deployment import MigrationRecord
from ..config import BassConfig
from ..core.dag import Component, ComponentDAG
from ..mesh.node import MeshNode
from ..mesh.topology import MeshTopology, citylab_subset, full_mesh_topology
from ..sim.rng import RngStreams
from .common import (
    build_env,
    deploy_app,
    run_timeline,
    set_node_egress_limit,
)


# -- Fig 8: migration timeline ------------------------------------------------


@dataclass
class Fig8Timeline:
    """Everything the Fig 8 plot shows, as event/series data."""

    times: list[float] = field(default_factory=list)
    goodput: list[float] = field(default_factory=list)
    capacity_34: list[float] = field(default_factory=list)
    capacity_13: list[float] = field(default_factory=list)
    migrations: list[MigrationRecord] = field(default_factory=list)
    full_probe_times: list[float] = field(default_factory=list)


def _pair_app_dag() -> ComponentDAG:
    """A producer→consumer pair requiring 8 Mbps (the Fig 8 subject).

    The producer is pinned to node3 (it stands in for a data source at
    that site); the consumer is free to move.
    """
    dag = ComponentDAG("pair")
    dag.add_component(
        Component("producer", cpu=1.0, memory_mb=256, pinned_node="node3")
    )
    dag.add_component(Component("consumer", cpu=1.0, memory_mb=256))
    dag.add_dependency("producer", "consumer", 8.0)
    return dag.validate()


class _PairApp:
    """Minimal Application wrapper around the fixed pair DAG."""

    name = "pair"

    def build_dag(self) -> ComponentDAG:
        return _pair_app_dag()

    def update_demands(self, binding, t) -> None:  # noqa: ANN001
        pass

    def on_deployed(self, binding) -> None:  # noqa: ANN001
        pass


def fig8_migration_timeline(
    *,
    drop_time_s: float = 540.0,
    second_drop_time_s: float = 1119.0,
    total_s: float = 1500.0,
    drop_to_mbps: float = 3.5,
    seed: int = 8,
) -> Fig8Timeline:
    """Fig 8: the worked migration example.

    A component pair needing 8 Mbps starts on node3/node4 over a
    25 Mbps link (threshold 50 % goodput, headroom ~20 %, probes every
    30 s).  At ``drop_time_s`` the node3→node4 link capacity collapses;
    the controller's headroom probe notices, a full probe refreshes the
    cached capacity, and the consumer migrates node4 → node1.  Later the
    node1↔node3 link degrades (and node3→node4 recovers), driving the
    consumer back to node4.
    """
    topology = MeshTopology()
    # node3 has room only for the pinned producer: consolidation onto
    # node3 (which would short-circuit the example) is infeasible, so
    # the consumer must live across a wireless link, as in Fig 8.
    topology.add_node(MeshNode("node1", cpu_cores=8, memory_mb=8192))
    topology.add_node(MeshNode("node3", cpu_cores=1, memory_mb=512))
    topology.add_node(MeshNode("node4", cpu_cores=8, memory_mb=8192))
    topology.add_link("node3", "node4", capacity_mbps=25.0)
    topology.add_link("node1", "node3", capacity_mbps=25.0)
    topology.add_link("node1", "node4", capacity_mbps=25.0)
    env = build_env(topology, seed=seed)
    config = BassConfig().with_migration(
        goodput_threshold=0.5, headroom_fraction=0.2, cooldown_s=30.0
    )
    app = _PairApp()
    handle = deploy_app(
        env,
        app,
        "bass-longest-path",
        config=config,
        force_assignments={"consumer": "node4"},
    )
    timeline = Fig8Timeline()

    def sample(t: float) -> None:
        timeline.times.append(t)
        timeline.goodput.append(handle.binding.goodput("producer", "consumer"))
        timeline.capacity_34.append(env.netem.capacity("node3", "node4"))
        timeline.capacity_13.append(env.netem.capacity("node1", "node3"))

    def first_drop() -> None:
        topology.link("node3", "node4").set_rate_limit(drop_to_mbps)

    def second_drop() -> None:
        topology.link("node3", "node4").set_rate_limit(None)
        topology.link("node1", "node3").set_rate_limit(drop_to_mbps)

    run_timeline(
        env,
        total_s,
        on_tick=sample,
        tick_s=5.0,
        events=[(drop_time_s, first_drop), (second_drop_time_s, second_drop)],
    )
    timeline.migrations = list(handle.deployment.migrations)
    timeline.full_probe_times = [
        probe.time
        for probe in handle.monitor.probe_log
        if probe.kind == "full" and probe.time > 0
    ]
    return timeline


# -- Fig 12: video conferencing under different query intervals ------------------


@dataclass(frozen=True)
class Fig12Series:
    """Mean client bitrate over time for one query-interval setting."""

    interval_s: Optional[float]  # None = no migration
    times: np.ndarray
    bitrate_mbps: np.ndarray
    migrations: list[MigrationRecord]

    def mean_during(self, start: float, end: float) -> float:
        mask = (self.times >= start) & (self.times < end)
        return float(self.bitrate_mbps[mask].mean())


def fig12_video_query_interval(
    intervals: tuple[Optional[float], ...] = (30.0, 60.0, 90.0, None),
    *,
    participants: int = 9,
    restrict_at_s: float = 10.0,
    restrict_for_s: float = 180.0,
    restrict_to_mbps: float = 10.0,
    total_s: float = 300.0,
    stream_mbps: float = 3.0,
    seed: int = 12,
) -> list[Fig12Series]:
    """Fig 12: how fast each bandwidth-query interval recovers bitrate.

    Setup per §6.2.3: 3-node LAN, Pion on node2, 9 participants on
    node3 (one publishes, the rest receive).  10 s in, node2's egress is
    throttled for 3 minutes.  BASS with a 30 s interval migrates the SFU
    to an unaffected node (briefly zeroing bitrate while WebRTC
    reconnects); without migration the clients sit at the degraded rate
    for the whole window.
    """
    results = []
    restrict_end = restrict_at_s + restrict_for_s
    for interval in intervals:
        topology = full_mesh_topology(3, capacity_mbps=1000.0)
        env = build_env(topology, seed=seed, restart_seconds=20.0)
        people = [
            Participant(f"p{i}", "node3", publishes=(i == 0))
            for i in range(participants)
        ]
        app = VideoConferenceApp(people, stream_mbps=stream_mbps)
        config = BassConfig(migrations_enabled=interval is not None)
        if interval is not None:
            config = config.with_probe(headroom_interval_s=interval)
            config = config.with_migration(cooldown_s=0.0)
        handle = deploy_app(
            env,
            app,
            "bass-longest-path",
            config=config,
            force_assignments={"sfu": "node2"},
        )
        times: list[float] = []
        bitrates: list[float] = []

        def sample(t: float) -> None:
            receivers = [
                p for p in app.participants if app.subscribed_streams(p) > 0
            ]
            times.append(t)
            bitrates.append(
                float(
                    np.mean(
                        [
                            app.client_bitrate_mbps(p, handle.binding)
                            for p in receivers
                        ]
                    )
                )
            )

        run_timeline(
            env,
            total_s,
            on_tick=sample,
            events=[
                (
                    restrict_at_s,
                    lambda: set_node_egress_limit(
                        env, "node2", restrict_to_mbps
                    ),
                ),
                (
                    restrict_end,
                    lambda: set_node_egress_limit(env, "node2", None),
                ),
            ],
        )
        results.append(
            Fig12Series(
                interval_s=interval,
                times=np.asarray(times),
                bitrate_mbps=np.asarray(bitrates),
                migrations=list(handle.deployment.migrations),
            )
        )
    return results


# -- Fig 13 + Table 1: social network under throttling, with migrations ----------


@dataclass(frozen=True)
class Fig13Series:
    """Per-second mean latency for one monitoring-interval setting."""

    interval_s: Optional[float]  # None = no migration
    times: np.ndarray
    latency_s: np.ndarray
    migrations: list[MigrationRecord]
    table1_rows: list[tuple[int, int, int]]

    def mean_during(self, start: float, end: float) -> float:
        mask = (self.times >= start) & (self.times < end)
        return float(self.latency_s[mask].mean())

    def p99(self) -> float:
        return float(np.percentile(self.latency_s, 99))


@dataclass
class Fig13Cell:
    """One wired fig13 interval setting that has not ticked yet.

    Built by :func:`prepare_fig13_cell`; the batch sweep drives it
    immediately, while ``bass-repro serve`` ticks it live under the
    status plane.  Construction order matches the original inline loop
    exactly, so the batch results stay byte-identical.
    """

    env: object
    app: SocialNetworkApp
    handle: object
    rng: object
    restrict_to_mbps: float

    def throttle(self) -> None:
        set_node_egress_limit(self.env, "node2", self.restrict_to_mbps)
        set_node_egress_limit(self.env, "node3", self.restrict_to_mbps)

    def unthrottle(self) -> None:
        set_node_egress_limit(self.env, "node2", None)
        set_node_egress_limit(self.env, "node3", None)

    def sample_latency_s(self, samples: int = 8) -> float:
        return float(
            np.mean(
                self.app.sample_latencies_s(
                    self.handle.binding, samples, self.rng
                )
            )
        )


def prepare_fig13_cell(
    interval: Optional[float],
    *,
    rps: float = 400.0,
    restrict_to_mbps: float = 25.0,
    seed: int = 13,
) -> Fig13Cell:
    """Assemble one fig13 interval cell without running the clock.

    Heterogeneous nodes sized so the application (12 cores) spans two
    nodes and the top-ranked node (node2, which the packer fills with
    the hottest services) is among the throttled ones — leaving slack
    on unthrottled node1 for migrations to use.
    """
    topology = MeshTopology()
    for name, cores in (("node1", 6.0), ("node2", 8.0), ("node3", 6.0)):
        topology.add_node(
            MeshNode(name, cpu_cores=cores, memory_mb=131072.0)
        )
    names = topology.node_names
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            topology.add_link(a, b, capacity_mbps=1000.0, latency_ms=0.5)
    env = build_env(
        topology, seed=seed, buffer_mbit=200.0, restart_seconds=8.0
    )
    app = SocialNetworkApp(annotate_rps=rps)
    config = BassConfig(migrations_enabled=interval is not None)
    if interval is not None:
        config = config.with_probe(headroom_interval_s=interval)
        config = config.with_migration(cooldown_s=0.0)
    handle = deploy_app(env, app, "bass-longest-path", config=config)
    app.set_rps(rps)
    app.update_demands(handle.binding, 0.0)
    rng = env.rng.get(f"fig13-{interval}")
    return Fig13Cell(
        env=env,
        app=app,
        handle=handle,
        rng=rng,
        restrict_to_mbps=restrict_to_mbps,
    )


def fig13_socialnet_migration(
    intervals: tuple[Optional[float], ...] = (30.0, 60.0, 90.0, None),
    *,
    rps: float = 400.0,
    restrict_at_s: float = 10.0,
    restrict_for_s: float = 180.0,
    restrict_to_mbps: float = 25.0,
    total_s: float = 300.0,
    seed: int = 13,
) -> list[Fig13Series]:
    """Fig 13 / Table 1: migrations vs monitoring interval under throttle.

    3-node LAN at 400 RPS, longest-path initial placement; 10 s in,
    nodes 2 and 3 have their egress throttled for 3 minutes.  The paper
    finds no-migration up to ~50 % worse than migrating, the 30 s
    interval best for the tail, and Table 1's cascade-free candidate
    counts.
    """
    results = []
    restrict_end = restrict_at_s + restrict_for_s
    for interval in intervals:
        cell = prepare_fig13_cell(
            interval,
            rps=rps,
            restrict_to_mbps=restrict_to_mbps,
            seed=seed,
        )
        env, app, handle = cell.env, cell.app, cell.handle
        times: list[float] = []
        latencies: list[float] = []

        def sample(t: float, cell=cell, times=times, latencies=latencies) -> None:
            times.append(t)
            latencies.append(cell.sample_latency_s())

        throttle = cell.throttle
        unthrottle = cell.unthrottle

        run_timeline(
            env,
            total_s,
            on_tick=sample,
            events=[(restrict_at_s, throttle), (restrict_end, unthrottle)],
        )
        results.append(
            Fig13Series(
                interval_s=interval,
                times=np.asarray(times),
                latency_s=np.asarray(latencies),
                migrations=list(handle.deployment.migrations),
                table1_rows=(
                    handle.controller.table1_rows()
                    if handle.controller is not None
                    else []
                ),
            )
        )
    return results


# -- Fig 14(a): restart cost -------------------------------------------------------


@dataclass(frozen=True)
class Fig14aResult:
    """Latency CDF data with and without a component restart."""

    baseline_latency_s: np.ndarray
    restart_latency_s: np.ndarray

    def means(self) -> tuple[float, float]:
        return (
            float(self.baseline_latency_s.mean()),
            float(self.restart_latency_s.mean()),
        )


def fig14a_restart_cdf(
    *,
    rps: float = 50.0,
    total_s: float = 240.0,
    restart_at_s: float = 120.0,
    restart_seconds: float = 8.0,
    seed: int = 14,
) -> Fig14aResult:
    """Fig 14a: the latency cost of restarting one component.

    Social network at 50 RPS on the CityLab mesh (static links — we
    isolate the restart effect).  Halfway through, the post-storage
    service is force-migrated; requests that touch it stall until it is
    back, inflating the mean from ~0.5 s to several seconds while the
    restart lasts.
    """
    topology = citylab_subset(with_traces=False)
    env = build_env(topology, seed=seed, restart_seconds=restart_seconds)
    app = SocialNetworkApp(annotate_rps=rps)
    handle = deploy_app(
        env,
        app,
        "bass-longest-path",
        config=BassConfig(migrations_enabled=False),
        start_controller=False,
    )
    app.set_rps(rps)
    app.update_demands(handle.binding, 0.0)
    rng = env.rng.get("fig14a")
    baseline: list[float] = []
    during_restart: list[float] = []
    restart_end = restart_at_s + restart_seconds

    def sample(t: float) -> None:
        samples = app.sample_latencies_s(handle.binding, 6, rng)
        if restart_at_s <= t < restart_end + 2.0:
            during_restart.extend(samples)
        elif t < restart_at_s:
            # Post-restart samples are excluded: the forced migration
            # leaves a different placement, and Fig 14a isolates the
            # restart window itself.
            baseline.extend(samples)

    def force_restart() -> None:
        deployment = handle.deployment
        current = deployment.node_of("post-storage-service")
        target = next(
            name
            for name in env.cluster.node_names
            if name != current
            and env.cluster.node(name).can_fit(
                handle.dag.component("post-storage-service").resources
            )
        )
        env.orchestrator.migrate(
            app.name, "post-storage-service", target, reason="fig14a forced"
        )
        handle.binding.sync_flows()

    run_timeline(
        env, total_s, on_tick=sample, events=[(restart_at_s, force_restart)]
    )
    return Fig14aResult(
        baseline_latency_s=np.asarray(baseline),
        restart_latency_s=np.asarray(during_restart),
    )


# -- Fig 14(b): scheduler comparison CDF on the emulated mesh ----------------------


@dataclass(frozen=True)
class Fig14bResult:
    """Latency distribution for one scheduler configuration."""

    label: str
    latency_s: np.ndarray
    migrations: int

    def p99(self) -> float:
        return float(np.percentile(self.latency_s, 99))

    def median(self) -> float:
        return float(np.median(self.latency_s))


def fig14b_scheduler_cdf(
    *,
    rps: float = 70.0,
    duration_s: float = 1200.0,
    seed: int = 140,
    restart_seconds: float = 8.0,
) -> list[Fig14bResult]:
    """Fig 14b: end-to-end latency CDFs of the four configurations.

    CityLab trace replay.  Paper ordering (at its 50 RPS, payload
    profile unknown): longest-path with migration best (p99 28 s), then
    BFS with migration, then longest-path without migration, then k3s
    (p99 66 s).  Our traffic profile reaches the same regime — the
    bandwidth-aware placement stressed enough that right-timed
    migrations visibly rescue the tail — at 70 RPS (see EXPERIMENTS.md
    for the calibration note).
    """
    configurations = [
        ("longest-path+mig", "bass-longest-path", True),
        ("bfs+mig", "bass-bfs", True),
        ("longest-path-nomig", "bass-longest-path", False),
        ("k3s", "k3s", False),
    ]
    results = []
    for label, scheduler, migrate in configurations:
        rng_streams = RngStreams(seed)
        topology = citylab_subset(
            with_traces=True,
            trace_duration_s=duration_s,
            rng=rng_streams.get("traces"),
        )
        env = build_env(
            topology,
            seed=seed,
            buffer_mbit=400.0,
            restart_seconds=restart_seconds,
        )
        app = SocialNetworkApp(annotate_rps=rps)
        config = BassConfig(migrations_enabled=migrate).with_migration(
            goodput_threshold=0.5, link_utilization_threshold=0.65
        )
        handle = deploy_app(
            env,
            app,
            scheduler,
            config=config,
            start_controller=migrate,
        )
        app.set_rps(rps)
        app.update_demands(handle.binding, 0.0)
        rng = env.rng.get(f"fig14b-{label}")
        latencies: list[float] = []

        def sample(t: float) -> None:
            latencies.extend(app.sample_latencies_s(handle.binding, 6, rng))

        run_timeline(env, duration_s, on_tick=sample)
        results.append(
            Fig14bResult(
                label=label,
                latency_s=np.asarray(latencies),
                migrations=len(handle.deployment.migrations),
            )
        )
    return results


# -- Fig 15(b): video bitrates per node under migration thresholds ------------------


@dataclass(frozen=True)
class Fig15bResult:
    """Mean per-client bitrate by node for one threshold setting."""

    threshold: Optional[float]  # None = no migration
    bitrate_by_node: dict[str, float]
    migrations: int


def fig15b_video_thresholds(
    thresholds: tuple[Optional[float], ...] = (None, 0.65, 0.85),
    *,
    per_node_clients: int = 3,
    duration_s: float = 600.0,
    stream_mbps: float = 2.5,
    seed: int = 15,
) -> list[Fig15bResult]:
    """Fig 15b: can migrating the SFU rescue poorly-connected clients?

    3 publishing clients at each of the 4 CityLab workers; the SFU
    starts on node3.  With migration at 65 % link utilization the SFU
    moves to better-connected node1 when node3's links saturate, roughly
    doubling node2's clients' bitrate (paper: 240 → 480 Kbps) and
    improving node1's; nodes 3/4 see no improvement.
    """
    results = []
    worker_nodes = ["node1", "node2", "node3", "node4"]
    for threshold in thresholds:
        rng_streams = RngStreams(seed)
        topology = citylab_subset(
            with_traces=True,
            trace_duration_s=duration_s,
            rng=rng_streams.get("traces"),
        )
        env = build_env(topology, seed=seed, restart_seconds=20.0)
        app = VideoConferenceApp.conference_at_nodes(
            worker_nodes, per_node_clients, stream_mbps=stream_mbps
        )
        config = BassConfig(migrations_enabled=threshold is not None)
        if threshold is not None:
            # Persistent saturation makes every placement look somewhat
            # violating; a long minimum residency keeps the SFU from
            # chasing marginal wins (each restart costs 20 s of blank
            # streams, which only amortizes over minutes — §6.3.2).
            config = config.with_migration(
                link_utilization_threshold=threshold,
                min_residency_s=240.0,
            )
        handle = deploy_app(
            env,
            app,
            "bass-longest-path",
            config=config,
            force_assignments={"sfu": "node3"},
        )
        sums: dict[str, float] = {n: 0.0 for n in worker_nodes}
        count = 0

        def sample(t: float) -> None:
            nonlocal count
            by_node = app.mean_bitrate_by_node(handle.binding)
            for node, value in by_node.items():
                sums[node] += value
            count += 1

        run_timeline(env, duration_s, on_tick=sample)
        results.append(
            Fig15bResult(
                threshold=threshold,
                bitrate_by_node={
                    node: total / max(count, 1) for node, total in sums.items()
                },
                migrations=len(handle.deployment.migrations),
            )
        )
    return results


# -- Table 1: migration iterations --------------------------------------------


@dataclass(frozen=True)
class Table1Result:
    """Per-iteration (over-quota, migrated) counts, plus the migrations."""

    rows: list[tuple[int, int, int]]
    migrations: list[MigrationRecord]


def table1_migration_iterations(
    *,
    rps: float = 200.0,
    throttle_mbps: float = 25.0,
    total_s: float = 260.0,
    seed: int = 21,
) -> Table1Result:
    """Table 1: components over quota vs migrated, per 30 s iteration.

    The social network runs on the 3-node cluster; the node carrying the
    second-most components has its egress throttled to 25 Mbps (the
    paper throttles "node 3").  Each controller iteration identifies the
    components exceeding their link-utilization quota, then migrates
    only a cascade-free subset — the paper's counts are (6→2), (1→1),
    (1→1), after which the violations clear.
    """
    topology = MeshTopology()
    for name, cores in (("node1", 6.0), ("node2", 8.0), ("node3", 6.0)):
        topology.add_node(MeshNode(name, cpu_cores=cores, memory_mb=131072.0))
    names = topology.node_names
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            topology.add_link(a, b, capacity_mbps=1000.0, latency_ms=0.5)
    env = build_env(topology, seed=seed, buffer_mbit=200.0, restart_seconds=8.0)
    app = SocialNetworkApp(annotate_rps=rps)
    config = BassConfig().with_migration(cooldown_s=0.0)
    handle = deploy_app(env, app, "bass-longest-path", config=config)
    app.set_rps(rps)
    app.update_demands(handle.binding, 0.0)

    # Throttle the node whose egress carries the most inter-node demand
    # (the paper's "node 3"): that is where a 25 Mbps cap bites.
    egress: dict[str, float] = {n: 0.0 for n in env.cluster.node_names}
    for src, dst, _ in handle.binding.inter_node_edges():
        egress[handle.deployment.node_of(src)] += handle.binding.edge_demand(
            src, dst
        )
    victim = max(egress, key=lambda n: egress[n])

    run_timeline(
        env,
        total_s,
        events=[(10.0, lambda: set_node_egress_limit(env, victim, throttle_mbps))],
    )
    return Table1Result(
        rows=handle.controller.table1_rows(),
        migrations=list(handle.deployment.migrations),
    )
