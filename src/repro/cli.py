"""Command-line entry point: regenerate any paper experiment.

Usage::

    bass-repro list
    bass-repro run fig10 [--quick]
    bass-repro run fig13 --quick --trace run.jsonl
    bass-repro run fig14cd --jobs 4 --cache-dir .bass-cache
    bass-repro run fig14cd --jobs 2 --no-cache --out sweep.json
    bass-repro run fig14cd --backend queue --jobs 4 --chunk-size 2
    bass-repro report run.jsonl
    bass-repro run table2

``--quick`` trims horizons so a laptop regenerates an experiment in
seconds (shape-accurate, noisier numbers).  ``--trace`` arms the flight
recorder for the run and writes the decision-event log as JSONL;
``report`` renders a saved trace as a human-readable causal timeline.

Sweep-shaped experiments (marked ``[sweep]`` in ``list``) additionally
accept ``--jobs N`` (fan cells over N worker processes), ``--backend
pool|queue`` (flat process-pool fan-out, or the work-stealing chunk
queue over persistent warm workers — see DESIGN.md "Distributed sweep
fabric"), ``--chunk-size N`` / ``--steal`` / ``--no-steal`` (queue
scheduling knobs), ``--cache-dir PATH`` (memoize completed cells
content-addressed on disk; under the queue backend the workers share
the store directly), ``--no-cache``, and ``--out PATH`` (write the
merged results as canonical JSON — byte-identical across backends,
``--jobs``, and chunk sizes).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence


@dataclass(frozen=True)
class SweepSettings:
    """How a sweep-shaped experiment should execute its cells."""

    jobs: int = 1
    cache: object = None  # Optional[repro.runner.ResultCache]
    backend: str = "pool"
    chunk_size: Optional[int] = None
    steal: bool = True


def _sweep_capable(run):
    """Mark a runner as accepting ``(quick, sweep)`` and returning its
    :class:`~repro.runner.SweepOutcome` list for ``--out`` / stats."""
    run.sweep_capable = True
    return run


def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    materialized = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in materialized))
        if materialized
        else len(headers[i])
        for i in range(len(headers))
    ]
    out = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    out.append("  ".join("-" * w for w in widths))
    out.extend(
        "  ".join(c.ljust(widths[i]) for i, c in enumerate(row))
        for row in materialized
    )
    return "\n".join(out)


def _run_fig2(quick: bool) -> None:
    from .experiments.motivation import fig2_bandwidth_variation

    links = fig2_bandwidth_variation(duration_s=600.0 if quick else 3600.0)
    print(
        _table(
            ["link", "mean_mbps", "rel_std"],
            [
                [l.label, f"{l.mean_mbps:.2f}", f"{l.rel_std:.2f}"]
                for l in links
            ],
        )
    )


def _run_fig4(quick: bool) -> None:
    from .experiments.motivation import fig4_pion_bottleneck

    points = fig4_pion_bottleneck(
        participant_counts=(4, 8, 10, 12, 14) if quick else
        (4, 6, 8, 10, 11, 12, 13, 14),
        settle_s=30.0 if quick else 60.0,
    )
    print(
        _table(
            ["participants", "per_client_mbps", "loss"],
            [
                [p.participants, f"{p.per_client_mbps:.2f}",
                 f"{p.loss_fraction:.3f}"]
                for p in points
            ],
        )
    )


def _run_fig5(quick: bool) -> None:
    from .experiments.motivation import fig5_socialnet_throttle

    series = fig5_socialnet_throttle(total_s=200.0 if quick else 360.0,
                                     throttle_start_s=60.0 if quick else 120.0)
    before, during, after = series.phase_means()
    print(
        _table(
            ["phase", "mean_latency_s"],
            [["before", f"{before:.2f}"], ["during", f"{during:.2f}"],
             ["after", f"{after:.2f}"]],
        )
    )


def _run_fig8(quick: bool) -> None:
    from .experiments.migration import fig8_migration_timeline

    timeline = (
        fig8_migration_timeline(drop_time_s=60.0, second_drop_time_s=300.0,
                                total_s=500.0)
        if quick
        else fig8_migration_timeline()
    )
    rows = [["full probe", f"{t:.0f}", ""] for t in timeline.full_probe_times]
    rows += [
        ["migration", f"{m.time:.0f}", f"{m.pod_name}: {m.from_node} -> "
         f"{m.to_node}"]
        for m in timeline.migrations
    ]
    print(_table(["event", "time_s", "detail"], sorted(rows, key=lambda r: float(r[1]))))


def _run_fig10(quick: bool) -> None:
    from .experiments.static_placement import fig10_camera_static

    rows = fig10_camera_static(duration_s=40.0 if quick else 120.0)
    print(
        _table(
            ["scheduler", "mean_ms", "chain_hops"],
            [
                [r.scheduler, f"{r.mean_latency_ms:.0f}",
                 r.inter_node_chain_hops]
                for r in rows
            ],
        )
    )


def _run_fig11(quick: bool) -> None:
    from .experiments.static_placement import fig11_socialnet_p99

    cells = fig11_socialnet_p99(
        rates=(100.0, 300.0) if quick else (100.0, 200.0, 300.0),
        duration_s=60.0 if quick else 150.0,
    )
    print(
        _table(
            ["scheduler", "rps", "restricted", "p99_s"],
            [
                [c.scheduler, int(c.rps), c.restricted,
                 f"{c.p99_latency_s:.2f}"]
                for c in cells
            ],
        )
    )


def _run_fig12(quick: bool) -> None:
    from .experiments.migration import fig12_video_query_interval

    series = fig12_video_query_interval(
        intervals=(30.0, None) if quick else (30.0, 60.0, 90.0, None),
        total_s=160.0 if quick else 300.0,
        restrict_for_s=100.0 if quick else 180.0,
    )
    print(
        _table(
            ["interval_s", "migrations", "mean_mbps_during"],
            [
                [
                    s.interval_s if s.interval_s is not None else "none",
                    len(s.migrations),
                    f"{s.mean_during(40.0, 100.0):.2f}",
                ]
                for s in series
            ],
        )
    )


def _run_fig13(quick: bool) -> None:
    from .experiments.migration import fig13_socialnet_migration

    series = fig13_socialnet_migration(
        intervals=(30.0, None) if quick else (30.0, 60.0, 90.0, None),
        total_s=160.0 if quick else 300.0,
        restrict_for_s=120.0 if quick else 180.0,
    )
    print(
        _table(
            ["interval_s", "migrations", "mean_s_during", "p99_s"],
            [
                [
                    s.interval_s if s.interval_s is not None else "none",
                    len(s.migrations),
                    f"{s.mean_during(30.0, 130.0):.2f}",
                    f"{s.p99():.2f}",
                ]
                for s in series
            ],
        )
    )


def _run_table1(quick: bool) -> None:
    from .experiments.migration import table1_migration_iterations

    result = table1_migration_iterations(total_s=200.0 if quick else 260.0)
    print(
        _table(
            ["iteration", "over_quota", "migrated"],
            [[i, o, m] for i, o, m in result.rows],
        )
    )


def _run_fig14a(quick: bool) -> None:
    from .experiments.migration import fig14a_restart_cdf

    result = fig14a_restart_cdf(
        total_s=140.0 if quick else 240.0,
        restart_at_s=70.0 if quick else 120.0,
    )
    baseline, restart = result.means()
    print(
        _table(
            ["series", "mean_latency_s"],
            [["steady state", f"{baseline:.3f}"],
             ["during restart", f"{restart:.3f}"]],
        )
    )


def _run_fig14b(quick: bool) -> None:
    from .experiments.migration import fig14b_scheduler_cdf

    results = fig14b_scheduler_cdf(duration_s=400.0 if quick else 1200.0)
    print(
        _table(
            ["configuration", "median_s", "p99_s", "migrations"],
            [
                [r.label, f"{r.median():.2f}", f"{r.p99():.2f}", r.migrations]
                for r in results
            ],
        )
    )


@_sweep_capable
def _run_fig14cd(quick: bool, sweep: SweepSettings):
    from .experiments.thresholds import fig14cd_sweep_spec
    from .runner import run_sweep

    spec = fig14cd_sweep_spec(
        heuristics=("longest_path",) if quick else ("bfs", "longest_path"),
        thresholds=(0.25, 0.65, 0.95) if quick else
        (0.25, 0.50, 0.65, 0.75, 0.95),
        headrooms=(0.20,) if quick else (0.10, 0.20, 0.30),
        duration_s=200.0 if quick else 600.0,
    )
    outcome = run_sweep(
        spec,
        jobs=sweep.jobs,
        cache=sweep.cache,
        backend=sweep.backend,
        chunk_size=sweep.chunk_size,
        steal=sweep.steal,
    )
    print(
        _table(
            ["heuristic", "threshold", "headroom", "uq_s", "migrations"],
            [
                [c.heuristic, c.threshold, c.headroom,
                 f"{c.upper_quartile_latency_s:.2f}", c.migrations]
                for c in outcome.results
            ],
        )
    )
    return [outcome]


def _run_fig15b(quick: bool) -> None:
    from .experiments.migration import fig15b_video_thresholds

    results = fig15b_video_thresholds(
        thresholds=(None, 0.65) if quick else (None, 0.65, 0.85),
        duration_s=300.0 if quick else 600.0,
    )
    print(
        _table(
            ["threshold", "migrations", "node1", "node2", "node3", "node4"],
            [
                [
                    r.threshold if r.threshold is not None else "none",
                    r.migrations,
                ]
                + [f"{r.bitrate_by_node[n]:.2f}" for n in
                   ("node1", "node2", "node3", "node4")]
                for r in results
            ],
        )
    )


@_sweep_capable
def _run_fig16(quick: bool, sweep: SweepSettings):
    from .experiments.thresholds import fig16_sweep_spec
    from .runner import run_sweep

    spec = fig16_sweep_spec(
        thresholds=(0.25, 0.75) if quick else (0.25, 0.50, 0.65, 0.75),
        duration_s=200.0 if quick else 600.0,
    )
    outcome = run_sweep(
        spec,
        jobs=sweep.jobs,
        cache=sweep.cache,
        backend=sweep.backend,
        chunk_size=sweep.chunk_size,
        steal=sweep.steal,
    )
    print(
        _table(
            ["threshold", "mean_s", "migrations"],
            [
                [c.threshold, f"{c.mean_latency_s:.2f}", c.migrations]
                for c in outcome.results
            ],
        )
    )
    return [outcome]


@_sweep_capable
def _run_multitenant(quick: bool, sweep: SweepSettings):
    from .experiments.multi_tenant import (
        contention_sweep_spec,
        multi_tenant_scaling_spec,
    )
    from .runner import run_sweep

    scaling = run_sweep(
        multi_tenant_scaling_spec(
            tenant_counts=(1, 4) if quick else (1, 2, 4, 8),
            duration_s=120.0 if quick else 240.0,
        ),
        jobs=sweep.jobs,
        cache=sweep.cache,
        backend=sweep.backend,
        chunk_size=sweep.chunk_size,
        steal=sweep.steal,
    )
    print(
        _table(
            ["tenants", "full_probes", "headroom_probes", "probes_per_hour",
             "migrations"],
            [
                [
                    result.tenants,
                    result.full_probes,
                    result.headroom_probes,
                    f"{result.probe_events_per_hour:.1f}",
                    result.total_migrations,
                ]
                for result in scaling.results
            ],
        )
    )
    contention_outcome = run_sweep(
        contention_sweep_spec(
            tenant_counts=(2,) if quick else (4,),
            duration_s=140.0 if quick else 180.0,
        ),
        jobs=sweep.jobs,
        cache=sweep.cache,
        backend=sweep.backend,
        chunk_size=sweep.chunk_size,
        steal=sweep.steal,
    )
    contention = contention_outcome.results[0]
    print(
        f"\ncontention: {contention.conflict_count} arbiter conflicts, "
        f"{contention.total_migrations} migrations across "
        f"{contention.epoch_count} epochs"
    )
    return [scaling, contention_outcome]


def _run_churn(quick: bool) -> None:
    from .experiments.churn import churn_comparison, churn_recovery

    duration = 160.0 if quick else 240.0
    results = churn_comparison(duration_s=duration)
    rows = []
    for r in results:
        rows.append(
            [
                r.label,
                f"{r.detection_latency_s:.0f}"
                if r.detection_latency_s is not None
                else "-",
                f"{r.time_to_recover_s:.0f}"
                if r.time_to_recover_s is not None
                else "never",
                f"{r.goodput_stats.pre_mean:.2f}",
                f"{r.goodput_stats.dip_min:.2f}",
                f"{r.goodput_stats.post_mean:.2f}",
                r.recovered_pods,
            ]
        )
    print(
        _table(
            ["mode", "detect_s", "recover_s", "pre_goodput", "dip",
             "post_goodput", "replaced"],
            rows,
        )
    )
    shared = churn_recovery(tenants=2, duration_s=duration)
    print(
        f"\ntwo tenants, one crash: {shared.recovered_pods} pods "
        f"re-placed, {shared.conflict_count} arbiter conflicts, "
        f"detection {shared.detection_latency_s:.0f}s"
    )


@_sweep_capable
def _run_ablations(quick: bool, sweep: SweepSettings):
    from .experiments.ablations import ablation_grid_spec
    from .runner import run_sweep

    spec = ablation_grid_spec(quick=quick)
    outcome = run_sweep(
        spec,
        jobs=sweep.jobs,
        cache=sweep.cache,
        backend=sweep.backend,
        chunk_size=sweep.chunk_size,
        steal=sweep.steal,
    )
    rows = []
    for cell, result in zip(spec.cells, outcome.results):
        if cell.label == "headroom_probing":
            summary = (
                f"overhead {result.headroom_overhead_fraction:.4%} headroom "
                f"vs {result.flooding_overhead_fraction:.2%} flooding"
            )
        elif cell.label == "cooldown":
            summary = ", ".join(
                f"{r.migrations} migrations @ cooldown {r.cooldown_s:.0f}s"
                for r in result
            )
        elif cell.label == "stability_guards":
            summary = (
                f"{result.guarded_migrations} migrations guarded vs "
                f"{result.unguarded_migrations} unguarded"
            )
        elif cell.label == "hybrid_heuristic":
            summary = ", ".join(
                f"{r.shape}/{r.heuristic}: {r.colocated_fraction:.0%}"
                for r in result
            )
        elif cell.label == "online_profiling":
            summary = (
                f"annotation error {result.initial_error:.2f} -> "
                f"{result.profiled_error:.2f} "
                f"({result.edges_updated} edges updated)"
            )
        else:  # routing_strategy
            summary = f"{len(result)} node pairs compared"
        rows.append([cell.label, summary])
    print(_table(["ablation", "summary"], rows))
    return [outcome]


@_sweep_capable
def _run_churnsweep(quick: bool, sweep: SweepSettings):
    from .experiments.churn import churn_seed_sweep_spec
    from .runner import run_sweep

    spec = churn_seed_sweep_spec(
        seeds=tuple(range(3)) if quick else tuple(range(6)),
        settle_s=60.0 if quick else 120.0,
    )
    outcome = run_sweep(
        spec,
        jobs=sweep.jobs,
        cache=sweep.cache,
        backend=sweep.backend,
        chunk_size=sweep.chunk_size,
        steal=sweep.steal,
    )
    print(
        _table(
            ["seed", "crash_node", "crash_at_s", "detect_s", "recover_s",
             "replaced"],
            [
                [
                    cell.seed,
                    result.crash_node,
                    f"{result.crash_at_s:.0f}",
                    f"{result.detection_latency_s:.0f}"
                    if result.detection_latency_s is not None
                    else "-",
                    f"{result.time_to_recover_s:.0f}"
                    if result.time_to_recover_s is not None
                    else "never",
                    result.recovered_pods,
                ]
                for cell, result in zip(spec.cells, outcome.results)
            ],
        )
    )
    return [outcome]


def _regions_capable(run):
    """Mark a runner as accepting the ``--regions N`` flag."""
    run.regions_capable = True
    return run


@_regions_capable
def _run_fleet(quick: bool, regions: int = 2) -> None:
    from .experiments.fleet import fleet_handoff, fleet_mesh
    from .metrics.summary import p50

    duration = 120.0 if quick else 240.0
    rows = []
    for n_regions, tenants in ((1, 2), (regions, 2 * regions)):
        result = fleet_mesh(
            regions=n_regions, tenants=tenants, duration_s=duration
        )
        decisions = result.decision_seconds or [0.0]
        rows.append(
            [
                n_regions,
                tenants,
                f"{result.probe_events_per_link_hour:.1f}",
                f"{p50(decisions) * 1e3:.3f}",
                result.conflict_count,
                result.committed_handoffs,
            ]
        )
    print(
        _table(
            ["regions", "tenants", "probes_per_link_hour",
             "median_decision_ms", "conflicts", "handoffs"],
            rows,
        )
    )
    pressure = fleet_handoff(duration_s=120.0 if quick else 180.0)
    latencies = pressure.handoff_latencies or [0.0]
    print(
        f"\nhandoff pressure (region 0 packed + throttled): "
        f"{pressure.handoff_counts.get('committed', 0)} committed @ "
        f"p50 {p50(latencies):.1f}s, "
        f"{pressure.handoff_counts.get('denied', 0)} denied, "
        f"{pressure.handoff_counts.get('aborted', 0)} aborted; "
        f"{pressure.cross_region_migrations} cross-region migration(s), "
        f"{pressure.conflict_count} arbiter conflict(s)"
    )


def _run_failover(quick: bool) -> None:
    from .experiments.failover import failover_outage

    result = failover_outage(duration_s=180.0 if quick else 240.0)
    stats = result.goodput_stats
    print(
        _table(
            ["metric", "value"],
            [
                ["orchestrator killed at", f"{result.kill_at_s:.0f}s"],
                ["outage", f"{result.down_s:.0f}s"],
                ["epochs missed", result.missed_epochs],
                ["recoveries deferred", result.deferred_recoveries],
                [
                    "resume -> first re-placement",
                    f"{result.resume_epoch_gap:.1f} epochs"
                    if result.resume_epoch_gap is not None
                    else "never",
                ],
                ["pods re-placed", result.churn.recovered_pods],
                ["goodput pre-outage", f"{stats.pre_mean:.2f}"],
                ["goodput dip", f"{stats.dip_min:.2f}"],
                ["goodput post-recovery", f"{stats.post_mean:.2f}"],
                [
                    "goodput recovered after",
                    f"{stats.time_to_recover_s:.0f}s"
                    if stats.time_to_recover_s is not None
                    else "never",
                ],
            ],
        )
    )


def _run_table2(quick: bool) -> None:
    from .experiments.static_placement import table2_camera_mesh

    rows = table2_camera_mesh(duration_s=300.0 if quick else 1200.0)
    print(
        _table(
            ["scenario", "scheduler", "median_ms", "migrations"],
            [
                [r.scenario, r.scheduler, f"{r.median_latency_ms:.0f}",
                 r.migrations]
                for r in rows
            ],
        )
    )


def _run_table3(quick: bool) -> None:
    from .experiments.overheads import table3_scheduling_latency

    rows = table3_scheduling_latency(trials=5 if quick else 20)
    print(
        _table(
            ["application", "scheduler", "avg_ms_per_component"],
            [[r.app, r.scheduler, f"{r.avg_ms:.4f}"] for r in rows],
        )
    )


def _run_table4(quick: bool) -> None:
    from .experiments.overheads import table4_dag_processing

    rows = table4_dag_processing(trials=10 if quick else 50)
    print(
        _table(
            ["application", "components", "avg_ms"],
            [[r.app, r.components, f"{r.avg_ms:.3f}"] for r in rows],
        )
    )


EXPERIMENTS: dict[str, tuple[str, Callable[..., object]]] = {
    "fig2": ("bandwidth variation on two CityLab links", _run_fig2),
    "fig4": ("Pion bitrate/loss vs participants on a bottleneck", _run_fig4),
    "fig5": ("social-network latency through a 25 Mbps throttle", _run_fig5),
    "fig8": ("worked migration timeline", _run_fig8),
    "fig10": ("camera latency per scheduler, unconstrained LAN", _run_fig10),
    "fig11": ("social-network p99 vs RPS, ± one throttled node", _run_fig11),
    "fig12": ("video bitrate vs bandwidth-query interval", _run_fig12),
    "fig13": ("social-network latency vs monitoring interval", _run_fig13),
    "table1": ("migration iterations: over-quota vs migrated", _run_table1),
    "fig14a": ("restart cost on end-to-end latency", _run_fig14a),
    "fig14b": ("scheduler comparison CDF on the emulated mesh", _run_fig14b),
    "fig14cd": ("threshold x headroom sweep, fixed arrivals", _run_fig14cd),
    "fig15b": ("video bitrate by node vs migration threshold", _run_fig15b),
    "fig16": ("threshold sweep under exponential arrivals", _run_fig16),
    "multitenant": ("probe sharing and migration arbitration at scale",
                    _run_multitenant),
    "fleet": ("regionalized control plane: sharded schedulers, handoffs",
              _run_fleet),
    "churn": ("node crash: detection latency and recovery vs k3s", _run_churn),
    "failover": ("orchestrator kill mid-run: deferred decisions, goodput dip",
                 _run_failover),
    "churnsweep": ("randomized crash plans across seeds", _run_churnsweep),
    "ablations": ("the design-choice ablation battery", _run_ablations),
    "table2": ("camera median latency on the emulated mesh", _run_table2),
    "table3": ("per-component scheduling latency", _run_table3),
    "table4": ("DAG processing time per application", _run_table4),
}


def _report_profile(capsule) -> None:
    """Where tick time went: print the phase/solver breakdown (stderr —
    stdout stays deterministic) and, when the run is traced, publish a
    ``profile.tick_phases`` event so ``bass-repro report`` and the
    instrument gauges carry the same numbers."""
    netem = capsule.env.netem
    phases = netem.tick_phase_stats()
    solver = netem.solver_stats()
    tracer = capsule.env.tracer
    if tracer.enabled:
        tracer.emit(
            "profile.tick_phases",
            capsule.engine.now,
            ticks=phases["ticks"],
            phase_seconds=phases["seconds"],
            solver=solver,
        )
    ticks = phases["ticks"]
    print(
        f"\ntick profile — {ticks} emulator tick(s), wall clock:",
        file=sys.stderr,
    )
    for phase, seconds in sorted(phases["seconds"].items()):
        per_ms = seconds / ticks * 1000.0 if ticks else 0.0
        print(
            f"  {phase:<14s} {seconds:9.3f}s total {per_ms:8.3f} ms/tick",
            file=sys.stderr,
        )
    print(
        f"  solver: {solver['full_solves']} full solve(s), "
        f"{solver['partial_solves']} partial, "
        f"{solver['components_resolved']} component(s) re-solved of "
        f"{solver['components']}",
        file=sys.stderr,
    )
    profiler = capsule.engine.profiler
    if profiler is not None:
        print(f"\n{profiler.render()}", file=sys.stderr)


def _run_checkpoint_mode(args, parser) -> int:
    """``run`` with --checkpoint-dir / --stop-at / --restore-from /
    --profile: one checkpointable cell (see repro.snap.scenarios)
    instead of the experiment's usual sweep shape.

    The contract the CI smoke leg pins: stop at tick T, restore in a
    fresh process, run to completion — and the summary (``--out``) and
    trace shards are byte-identical to an uninterrupted run with the
    same checkpoint cadence attached.
    """
    import json
    from pathlib import Path

    from .snap import (
        SCENARIOS,
        CheckpointPolicy,
        SnapshotError,
        build_capsule,
        finish_capsule,
        latest_checkpoint,
        read_snapshot,
    )

    if args.experiment not in SCENARIOS:
        parser.error(
            f"--checkpoint-dir/--stop-at/--restore-from/--profile run a "
            f"single checkpointable cell; {args.experiment!r} is not one "
            f"(expected one of {SCENARIOS})"
        )
    if (
        args.jobs != 1
        or args.cache_dir is not None
        or args.no_cache
        or args.backend != "pool"
        or args.chunk_size is not None
        or args.steal is not None
    ):
        parser.error(
            "--jobs/--backend/--chunk-size/--steal/--cache-dir/"
            "--no-cache do not apply to checkpointable runs "
            "(one cell, one process)"
        )
    if args.stop_at is not None and not (
        args.checkpoint_dir or args.restore_from
    ):
        parser.error("--stop-at needs --checkpoint-dir to write into")
    if args.trace and args.trace_stream:
        parser.error("--trace and --trace-stream are mutually exclusive")

    tracer = None
    previous = None
    if args.restore_from:
        if args.trace or args.trace_stream:
            parser.error(
                "--trace/--trace-stream cannot start on a restored run: "
                "the checkpoint carries the original recorder, which "
                "resumes automatically (streamed shards keep appending "
                "to their original directory)"
            )
        source = Path(args.restore_from)
        if source.is_dir():
            found = latest_checkpoint(source)
            if found is None:
                parser.error(f"no *.bass checkpoint found in {source}")
            source = found
        try:
            meta, capsule = read_snapshot(
                source, check_fingerprint=not args.no_fingerprint_check
            )
        except SnapshotError as error:
            parser.error(str(error))
        if capsule.scenario != args.experiment:
            parser.error(
                f"{source} snapshots scenario {capsule.scenario!r}; "
                f"restore it with 'bass-repro run {capsule.scenario} "
                f"--restore-from {source}'"
            )
        print(
            f"restored {meta.scenario} from {source} at "
            f"t={meta.sim_time_s:.0f}s (epoch "
            f"{capsule.control_plane.epoch_count})"
        )
        policy = capsule.control_plane.checkpoints
        if args.checkpoint_dir:
            if policy is None:
                policy = CheckpointPolicy(
                    args.checkpoint_dir,
                    every_k_epochs=args.checkpoint_every,
                )
                policy.bind(capsule)
                capsule.control_plane.attach_checkpoints(policy)
            else:
                # The pickled cadence shapes the event heap; keep it
                # and only re-point the directory.
                policy.directory = Path(args.checkpoint_dir)
        restored_tracer = capsule.env.tracer
        if restored_tracer.enabled:
            tracer = restored_tracer
    else:
        if args.trace or args.trace_stream:
            from .obs.trace import Tracer, set_default_tracer

            sink = None
            if args.trace_stream:
                from .obs.stream import StreamingSink

                sink = StreamingSink(args.trace_stream)
            tracer = Tracer.with_instruments(sink=sink)
            previous = set_default_tracer(tracer)
        capsule = build_capsule(
            args.experiment, quick=args.quick, regions=args.regions
        )
        policy = None
        if args.checkpoint_dir:
            policy = CheckpointPolicy(
                args.checkpoint_dir, every_k_epochs=args.checkpoint_every
            )
            policy.bind(capsule)
            capsule.control_plane.attach_checkpoints(policy)

    if args.profile:
        # Idempotent; restored capsules start with zeroed phase
        # accumulators (the checkpoint drops wall-clock accounting).
        capsule.engine.enable_profiling()

    try:
        if args.stop_at is not None:
            if policy is None:
                parser.error(
                    "--stop-at needs a checkpoint policy: pass "
                    "--checkpoint-dir (the restored snapshot carries "
                    "none)"
                )
            reached = capsule.run_until(args.stop_at)
            path = policy.write(label=f"stop-t{int(reached):06d}")
            summary = None
            print(f"stopped at t={reached:.0f}s; checkpoint -> {path}")
        else:
            capsule.run_to_completion()
            summary = finish_capsule(capsule)
    finally:
        if previous is not None:
            from .obs.trace import set_default_tracer

            set_default_tracer(previous)

    if args.profile:
        # Emit before the trace is written/sealed so the report's
        # profile section sees the event.
        _report_profile(capsule)

    if tracer is not None:
        if args.trace:
            tracer.to_jsonl(args.trace)
            print(
                f"trace: {len(tracer.events)} events -> {args.trace} "
                f"(render with: bass-repro report {args.trace})"
            )
        else:
            tracer.close()

    if summary is not None:
        rendered = json.dumps(summary, indent=2, sort_keys=True)
        print(rendered)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(rendered + "\n")
            print(f"results: {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    from .runner import BACKENDS

    parser = argparse.ArgumentParser(
        prog="bass-repro",
        description="Regenerate the BASS paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    runner = sub.add_parser("run", help="run one experiment")
    runner.add_argument("experiment", choices=sorted(EXPERIMENTS))
    runner.add_argument(
        "--quick",
        action="store_true",
        help="shorter horizons; shape-accurate but noisier",
    )
    runner.add_argument(
        "--trace",
        metavar="PATH",
        help="record the run's decision events to a JSONL trace file",
    )
    runner.add_argument(
        "--trace-stream",
        metavar="DIR",
        help="record the run's decision events as rotating JSONL shards "
        "in DIR (bounded memory; concatenation equals --trace output)",
    )
    runner.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep-shaped experiments "
        "(results stay byte-identical to --jobs 1)",
    )
    runner.add_argument(
        "--backend",
        choices=BACKENDS,
        default="pool",
        help="sweep execution backend: 'pool' fans each cell out as "
        "its own process-pool task; 'queue' runs cost-ordered chunks "
        "over persistent warm workers with work-stealing "
        "(output bytes are identical either way)",
    )
    runner.add_argument(
        "--chunk-size",
        type=int,
        metavar="N",
        help="queue backend: cells per dispatched chunk "
        "(default: about four chunks per worker)",
    )
    steal_group = runner.add_mutually_exclusive_group()
    steal_group.add_argument(
        "--steal",
        dest="steal",
        action="store_true",
        default=None,
        help="queue backend: split busy workers' remaining chunks for "
        "idle workers (the default)",
    )
    steal_group.add_argument(
        "--no-steal",
        dest="steal",
        action="store_false",
        help="queue backend: disable work-stealing",
    )
    runner.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="memoize completed sweep cells in this content-addressed "
        "cache directory (shared directly by queue-backend workers)",
    )
    runner.add_argument(
        "--no-cache",
        action="store_true",
        help="disable cell memoization even when --cache-dir is set",
    )
    runner.add_argument(
        "--out",
        metavar="PATH",
        help="write the sweep's merged results as canonical JSON "
        "(byte-identical across --jobs settings)",
    )
    runner.add_argument(
        "--regions",
        type=int,
        default=2,
        metavar="N",
        help="region count for the regionalized fleet experiment",
    )
    runner.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="run the experiment as a single checkpointable cell and "
        "write versioned snapshots here (periodically, and on --stop-at)",
    )
    runner.add_argument(
        "--checkpoint-every",
        type=int,
        default=5,
        metavar="K",
        help="write a checkpoint every K controller epochs "
        "(0 disables periodic writes; default 5)",
    )
    runner.add_argument(
        "--stop-at",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop the run at this simulated time and write one "
        "checkpoint instead of a summary (requires --checkpoint-dir)",
    )
    runner.add_argument(
        "--restore-from",
        metavar="PATH",
        help="resume from a snapshot file (or the newest *.bass in a "
        "directory) and run to completion; the result is byte-identical "
        "to the uninterrupted run",
    )
    runner.add_argument(
        "--no-fingerprint-check",
        action="store_true",
        help="restore a snapshot written by different repro code "
        "(the restored run may diverge; use only for inspection)",
    )
    runner.add_argument(
        "--profile",
        action="store_true",
        help="profile the tick hot path (single-cell scenarios): print "
        "per-phase timings and the engine profiler table to stderr, and "
        "record a profile.tick_phases trace event when tracing",
    )
    reporter = sub.add_parser(
        "report", help="render a saved trace as a causal run report"
    )
    reporter.add_argument(
        "trace",
        help="JSONL trace written by run --trace, or a shard directory "
        "written by run --trace-stream / serve --stream-dir",
    )
    server = sub.add_parser(
        "serve",
        help="tick a scenario live and serve /metrics, /v1/status, "
        "/v1/epoch (see DESIGN.md 'Live status plane')",
    )
    server.add_argument(
        "scenario",
        nargs="?",
        default="fig13",
        choices=("fig13", "churn"),
        help="which live scenario to tick (default: fig13)",
    )
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument(
        "--port",
        type=int,
        default=8791,
        help="listen port (0 picks an ephemeral port)",
    )
    server.add_argument(
        "--quick", action="store_true", help="shorter simulated horizon"
    )
    server.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the scenario's simulated horizon",
    )
    server.add_argument(
        "--pace",
        type=float,
        default=0.0,
        metavar="X",
        help="simulated seconds advanced per wall second "
        "(0 = as fast as possible)",
    )
    server.add_argument(
        "--status-path",
        default="status.json",
        metavar="PATH",
        help="where the epoch-managed status.json is published",
    )
    server.add_argument(
        "--status-every",
        type=int,
        default=5,
        metavar="K",
        help="publish status.json every K controller epochs",
    )
    server.add_argument(
        "--stream-dir",
        metavar="DIR",
        help="stream the run's trace as rotating JSONL shards in DIR",
    )
    server.add_argument(
        "--no-linger",
        action="store_true",
        help="exit when the simulated horizon completes instead of "
        "serving until SIGINT/SIGTERM",
    )
    server.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="write periodic snapshots here (plus a final one on "
        "SIGTERM); if DIR already holds a checkpoint, resume the "
        "killed run from it instead of starting fresh",
    )
    server.add_argument(
        "--checkpoint-every",
        type=int,
        default=5,
        metavar="K",
        help="checkpoint every K controller epochs (default 5)",
    )
    args = parser.parse_args(argv)

    if args.command == "serve":
        from .obs.serve import ServeOptions, serve_run

        return serve_run(
            ServeOptions(
                scenario=args.scenario,
                host=args.host,
                port=args.port,
                quick=args.quick,
                duration_s=args.duration,
                pace=args.pace,
                status_path=args.status_path,
                status_every=args.status_every,
                stream_dir=args.stream_dir,
                linger=not args.no_linger,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
            )
        )

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            sweepable = getattr(EXPERIMENTS[name][1], "sweep_capable", False)
            tag = " [sweep]" if sweepable else ""
            print(f"{name:12s} {EXPERIMENTS[name][0]}{tag}")
        return 0

    if args.command == "report":
        from .obs.report import read_trace, render_report

        print(render_report(read_trace(args.trace)))
        return 0

    if (
        args.checkpoint_dir
        or args.restore_from
        or args.stop_at is not None
        or args.profile
    ):
        return _run_checkpoint_mode(args, parser)

    description, run = EXPERIMENTS[args.experiment]
    sweep_capable = getattr(run, "sweep_capable", False)
    sweep_flags = (
        args.jobs != 1
        or args.cache_dir is not None
        or args.no_cache
        or args.out is not None
        or args.backend != "pool"
        or args.chunk_size is not None
        or args.steal is not None
    )
    if sweep_flags and not sweep_capable:
        parser.error(
            f"--jobs/--backend/--chunk-size/--steal/--cache-dir/"
            f"--no-cache/--out apply only to sweep-shaped experiments; "
            f"{args.experiment!r} is not one (see 'bass-repro list')"
        )
    if args.backend != "queue" and (
        args.chunk_size is not None or args.steal is not None
    ):
        parser.error(
            "--chunk-size/--steal/--no-steal are queue-backend "
            "scheduling knobs; add --backend queue"
        )
    regions_capable = getattr(run, "regions_capable", False)
    if args.regions != 2 and not regions_capable:
        parser.error(
            f"--regions applies only to the regionalized fleet "
            f"experiment; {args.experiment!r} does not take it"
        )
    if sweep_capable:
        from .runner import open_cache

        cache = (
            None if args.no_cache else open_cache(args.cache_dir)
        )
        settings = SweepSettings(
            jobs=args.jobs,
            cache=cache,
            backend=args.backend,
            chunk_size=args.chunk_size,
            steal=args.steal if args.steal is not None else True,
        )
        invoke: Callable[[], object] = lambda: run(args.quick, settings)
    elif regions_capable:
        invoke = lambda: run(args.quick, regions=args.regions)
    else:
        invoke = lambda: run(args.quick)

    if args.trace and args.trace_stream:
        parser.error(
            "--trace and --trace-stream are mutually exclusive: the "
            "shard directory already concatenates to the --trace output"
        )

    print(f"== {args.experiment}: {description} ==\n")
    if args.trace or args.trace_stream:
        from .obs.trace import Tracer, set_default_tracer

        sink = None
        if args.trace_stream:
            from .obs.stream import StreamingSink

            sink = StreamingSink(args.trace_stream)
        tracer = Tracer.with_instruments(sink=sink)
        previous = set_default_tracer(tracer)
        try:
            outcomes = invoke()
        finally:
            set_default_tracer(previous)
        if args.trace:
            tracer.to_jsonl(args.trace)
            print(
                f"\ntrace: {len(tracer.events)} events -> {args.trace} "
                f"(render with: bass-repro report {args.trace})"
            )
        else:
            tracer.close()
            shards = len(sink.shard_paths())
            print(
                f"\ntrace: {len(tracer)} events -> {shards} shard(s) in "
                f"{args.trace_stream} (render with: bass-repro report "
                f"{args.trace_stream})"
            )
    else:
        outcomes = invoke()

    if sweep_capable and outcomes:
        for outcome in outcomes:
            stats = outcome.stats
            # Timing telemetry goes to stderr: stdout carries only the
            # deterministic experiment data, so two runs of the same
            # command always produce diff-identical stdout.
            print(
                f"\nsweep {outcome.spec.name}: {stats.cells} cells in "
                f"{stats.wall_s:.1f}s ({stats.cells_per_second:.2f} "
                f"cells/s, {stats.executed} executed, {stats.cached} "
                f"cached, cache hit rate {stats.cache_hit_rate:.0%})",
                file=sys.stderr,
            )
        if args.out:
            from .runner import canonical_json

            payload = canonical_json(
                {o.spec.name: o.results for o in outcomes}
            )
            with open(args.out, "w") as handle:
                handle.write(payload + "\n")
            print(f"results: {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
