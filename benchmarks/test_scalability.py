"""Scalability of the scheduling machinery (§3.2.1's complexity claims
and §7's 30-node-mesh sizing argument).

The paper argues its heuristics stay tractable where ILP solvers are
"infeasible for resource constrained wireless mesh environments" — a
Philadelphia mesh of ~30 nodes would need 900 path-bandwidth
constraints.  These benchmarks time the heuristics on synthetic DAGs up
to hundreds of components and the allocator on large flow sets, and
check the growth stays polynomial (sub-cubic empirically).
"""

import time

import numpy as np
import pytest

from repro.core.dag import Component, ComponentDAG
from repro.core.ordering import (
    breadth_first_order,
    hybrid_order,
    longest_path_order,
)
from repro.net.fairness import FlowDemand, max_min_allocation

from _reporting import fmt, run_once, save_table


def layered_dag(n_components: int, *, fanout: int = 3) -> ComponentDAG:
    """A layered DAG (the shape of real microservice graphs)."""
    dag = ComponentDAG(f"scale{n_components}")
    rng = np.random.default_rng(n_components)
    names = [f"c{i}" for i in range(n_components)]
    for name in names:
        dag.add_component(Component(name))
    for i, name in enumerate(names[1:], start=1):
        # Every component gets 1..fanout parents among earlier ones.
        n_parents = int(rng.integers(1, fanout + 1))
        parents = rng.choice(i, size=min(n_parents, i), replace=False)
        for parent in parents:
            dag.add_dependency(
                names[int(parent)], name, float(rng.uniform(0.5, 20.0))
            )
    return dag


def _time_orderings(n: int) -> dict[str, float]:
    dag = layered_dag(n)
    timings = {}
    for label, func in (
        ("bfs", breadth_first_order),
        ("longest_path", longest_path_order),
        ("hybrid", hybrid_order),
    ):
        start = time.perf_counter()
        order = func(dag)
        timings[label] = time.perf_counter() - start
        assert sorted(order) == sorted(dag.component_names)
    return timings


@pytest.mark.benchmark(group="scalability")
def test_ordering_scalability(benchmark):
    sizes = (25, 50, 100, 200, 400)
    results = run_once(
        benchmark,
        lambda: {n: _time_orderings(n) for n in sizes},
    )
    save_table(
        "scalability_ordering",
        ["components", "bfs_ms", "longest_path_ms", "hybrid_ms"],
        [
            [
                n,
                fmt(results[n]["bfs"] * 1000, 2),
                fmt(results[n]["longest_path"] * 1000, 2),
                fmt(results[n]["hybrid"] * 1000, 2),
            ]
            for n in sizes
        ],
        note="paper complexity: BFS O(V^2 log V), longest-path O(V(V+E))",
    )
    # Polynomial growth: 16x the components costs well under the ~4096x
    # a cubic blow-up would imply (generous bound absorbing timer noise).
    for label in ("bfs", "longest_path", "hybrid"):
        small = max(results[25][label], 1e-5)
        large = results[400][label]
        assert large / small < (400 / 25) ** 3
    # Everything stays interactive at mesh scale.
    assert results[400]["longest_path"] < 5.0


@pytest.mark.benchmark(group="scalability")
def test_allocation_scalability(benchmark):
    """Max-min allocation over hundreds of flows on a 30-node mesh-sized
    link set completes in milliseconds."""

    def run() -> dict[int, float]:
        rng = np.random.default_rng(7)
        links = [(f"n{i}", f"n{(i + 1) % 30}") for i in range(30)]
        timings = {}
        for n_flows in (50, 200, 800):
            flows = []
            for i in range(n_flows):
                start = int(rng.integers(0, 30))
                hops = int(rng.integers(1, 4))
                path = tuple(
                    links[(start + h) % 30] for h in range(hops)
                )
                flows.append(
                    FlowDemand(
                        flow_id=f"f{i}",
                        links=path,
                        demand_mbps=float(rng.uniform(0.1, 20.0)),
                    )
                )
            capacities = {link: 25.0 for link in links}
            begin = time.perf_counter()
            rates = max_min_allocation(flows, capacities)
            timings[n_flows] = time.perf_counter() - begin
            assert len(rates) == n_flows
        return timings

    timings = run_once(benchmark, run)
    save_table(
        "scalability_allocation",
        ["flows", "max_min_ms"],
        [[n, fmt(t * 1000, 2)] for n, t in timings.items()],
        note="30-node ring of 25 Mbps links (the Philadelphia-mesh scale "
        "the paper cites)",
    )
    assert timings[800] < 2.0
