"""The multi-tenant control plane.

The paper's evaluation (§6) co-deploys up to three applications on one
mesh.  Each application still owns its DAG, deployment binding, and
:class:`~repro.core.controller.BandwidthController`, but the machinery
that touches the *shared substrate* is owned once per mesh by a
:class:`ControlPlane`:

* **Shared net-monitor** — one :class:`~repro.core.netmonitor.NetMonitor`
  serves every tenant, so startup max-capacity floods respect one
  fleet-wide per-link cooldown and periodic headroom probes are
  deduplicated per link per epoch regardless of tenant count.
* **Epoch loop** — tenants with the same probing cadence share one
  periodic task.  Each epoch runs in three phases across all tenants:
  ``observe`` (flow sync + shared probing), ``plan`` (violation
  detection), ``act`` (migration).  Acting order is deterministic:
  highest violation severity first, ties broken by application name.
* **Fleet arbiter** — a per-epoch claims board.  When an application
  migrates a component onto a node, that node is claimed for the rest
  of the epoch; other applications' target selection excludes it, so
  two tenants never race their restarts onto the same node's
  CPU/memory/bandwidth inside one epoch.  Deflected choices are logged
  as conflicts for the scalability reports.

A mesh with a single tenant behaves exactly as the pre-control-plane
harness did: one monitor, one controller, same probe order, same
migration decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from time import perf_counter
from typing import TYPE_CHECKING, Mapping, Optional

from ..cluster.orchestrator import ClusterState, Orchestrator
from ..config import FleetConfig, ProbeConfig
from ..errors import MigrationError, SchedulingError
from ..net.netem import NetworkEmulator
from ..obs.trace import TracerBase, resolve_tracer
from .controller import BandwidthController, ControllerIteration
from .netmonitor import NetMonitor
from .regions import (
    HandoffRequest,
    RegionClaim,
    RegionController,
    RegionMap,
    RegionRoundStats,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.detector import FailureDetector
    from ..faults.recovery import RecoveryCoordinator
    from ..obs.status import StatusPublisher
    from ..sim.engine import Engine, PeriodicTask

_EPSILON = 1e-9


@dataclass(frozen=True)
class ArbiterClaim:
    """One admitted migration: ``app`` moved ``component`` to ``node``."""

    time: float
    app: str
    component: str
    node: str


@dataclass(frozen=True)
class ArbiterConflict:
    """A migration choice deflected by another tenant's claim.

    ``granted`` is the node actually used instead of the preferred one
    (None when no alternative qualified and the migration waited for the
    next epoch).
    """

    time: float
    app: str
    component: str
    preferred: str
    granted: Optional[str]


class FleetArbiter:
    """The fleet-level migration arbiter.

    Two operating modes share one instance:

    * **Synchronous (legacy)** — a per-epoch claims board.  Within one
      controller epoch, the first application to migrate onto a node
      claims it; subsequent applications must pick elsewhere (or wait
      an epoch).  Claims reset every epoch — this arbitrates *races*,
      not long-term placement, which the resource ledger already owns.
    * **Eventually consistent (regionalized)** — regions act
      autonomously against their local boards and submit *claim
      batches* asynchronously.  :meth:`resolve` orders all pending
      claims by ``(severity desc, epoch, region, app, component)``
      without any global lock; losers of a same-node race are recorded
      as conflicts, and the winning claims are *published* — regions
      see them at their next round, one round late.  Hard resource
      safety never depends on this: the cluster ledger's atomic
      ``can_fit`` check guards every migration regardless of claim
      ordering.

    Cross-region migrations additionally go through the two-phase
    handoff protocol (:class:`~repro.core.regions.HandoffRequest`),
    tracked on :attr:`handoffs`.
    """

    def __init__(self) -> None:
        self.claims: list[ArbiterClaim] = []
        self.conflicts: list[ArbiterConflict] = []
        self.epoch_count = 0
        self._epoch_claims: dict[str, str] = {}  # node -> claiming app
        self._pending: list[RegionClaim] = []
        self._published: dict[str, RegionClaim] = {}  # node -> winner
        self.resolution_count = 0
        self.handoffs: list[HandoffRequest] = []

    def begin_epoch(self, time: float) -> None:
        """Clear the claims board for a new epoch."""
        self.epoch_count += 1
        self._epoch_claims = {}

    def nodes_claimed_by_others(self, app: str) -> set[str]:
        """Nodes another application migrated onto this epoch."""
        return {
            node
            for node, owner in self._epoch_claims.items()
            if owner != app
        }

    def claim(self, time: float, app: str, component: str, node: str) -> None:
        """Record an admitted migration, claiming ``node`` this epoch."""
        self._epoch_claims[node] = app
        self.claims.append(ArbiterClaim(time, app, component, node))

    def record_conflict(
        self,
        time: float,
        app: str,
        component: str,
        preferred: str,
        granted: Optional[str],
    ) -> None:
        self.conflicts.append(
            ArbiterConflict(time, app, component, preferred, granted)
        )

    @property
    def conflict_count(self) -> int:
        return len(self.conflicts)

    # -- eventually-consistent claim epochs (regionalized mode) ------------

    def submit_batch(self, batch: list[RegionClaim]) -> None:
        """Async ingest of one region's round claims (no lock, no
        ordering yet — resolution happens at :meth:`resolve`)."""
        self._pending.extend(batch)

    def resolve(
        self, time: float
    ) -> list[tuple[RegionClaim, RegionClaim]]:
        """Order all pending claims and publish the winners' board.

        Claims are totally ordered by ``(-severity, epoch, region, app,
        component)``; the first claim on each node wins the published
        slot.  A losing claim's migration *already executed* (regions
        do not wait for permission — that is the eventual-consistency
        trade) — the loss is recorded as a conflict so the contention is
        visible, and the loser gets no published protection for the
        node.  Returns ``(loser, winner)`` pairs.
        """
        ordered = sorted(
            self._pending,
            key=lambda c: (-c.severity, c.epoch, c.region, c.app, c.component),
        )
        board: dict[str, RegionClaim] = {}
        collisions: list[tuple[RegionClaim, RegionClaim]] = []
        for claim in ordered:
            self.claims.append(
                ArbiterClaim(claim.time, claim.app, claim.component, claim.node)
            )
            held = board.get(claim.node)
            if held is None:
                board[claim.node] = claim
            elif held.region != claim.region or held.app != claim.app:
                self.record_conflict(
                    time, claim.app, claim.component, claim.node, None
                )
                collisions.append((claim, held))
        self._pending = []
        self._published = board
        self.resolution_count += 1
        return collisions

    def published_claims(self) -> dict[str, tuple[str, str]]:
        """node -> (region, app) winners of the last resolution — the
        (one round stale) view regions arbitrate against."""
        return {
            node: (claim.region, claim.app)
            for node, claim in self._published.items()
        }

    def board_claim(self, node: str) -> Optional[RegionClaim]:
        return self._published.get(node)

    # -- two-phase handoff bookkeeping -------------------------------------

    def reserve_for_handoff(self, request: HandoffRequest) -> None:
        """Pin the target node on the published board while the handoff
        is in flight, so no other claim or handoff grabs it."""
        self._published[request.target_node] = RegionClaim(
            time=request.requested_at,
            epoch=request.epoch,
            region=request.target_region,
            app=request.app,
            component=request.component,
            node=request.target_node,
            severity=request.severity,
        )

    def release_handoff_reservation(self, request: HandoffRequest) -> None:
        held = self._published.get(request.target_node)
        if (
            held is not None
            and held.app == request.app
            and held.component == request.component
        ):
            del self._published[request.target_node]

    def handoff_counts(self) -> dict[str, int]:
        """Handoff records by terminal/current phase."""
        counts: dict[str, int] = {}
        for request in self.handoffs:
            counts[request.phase] = counts.get(request.phase, 0) + 1
        return counts


def check_cluster_ledger(cluster: ClusterState) -> None:
    """Assert no node's ledger is over-allocated (never goes negative).

    Raises:
        SchedulingError: naming the offending node, should any
            orchestration path ever oversubscribe CPU or memory.
    """
    for node in cluster.schedulable_nodes():
        allocated = node.allocated
        capacity = node.capacity
        if (
            allocated.cpu > capacity.cpu + _EPSILON
            or allocated.memory_mb > capacity.memory_mb + _EPSILON
        ):
            raise SchedulingError(
                f"ledger violation: node {node.node_name!r} allocated "
                f"{allocated} beyond capacity {capacity}"
            )


class ControlPlane:
    """Owns the shared monitor, epoch loop, and arbiter for one mesh.

    Args:
        netem: the mesh's network emulator (its engine drives epochs).
        orchestrator: executes migrations; supplies the cluster ledger.
        config: fleet-level knobs; defaults share probes and arbitrate.
    """

    def __init__(
        self,
        netem: NetworkEmulator,
        orchestrator: Orchestrator,
        *,
        config: Optional[FleetConfig] = None,
        tracer: Optional[TracerBase] = None,
    ) -> None:
        self.netem = netem
        self.orchestrator = orchestrator
        self.tracer = resolve_tracer(tracer)
        self.config = (config if config is not None else FleetConfig()).validate()
        self.arbiter: Optional[FleetArbiter] = (
            FleetArbiter() if self.config.arbiter_enabled else None
        )
        self._monitor: Optional[NetMonitor] = None
        self._controllers: dict[str, BandwidthController] = {}
        self._tasks: dict[float, "PeriodicTask"] = {}
        self.recovery: Optional["RecoveryCoordinator"] = None
        #: Two-tier (regionalized) state; all None/empty on the legacy
        #: single-loop path, which stays byte-identical.
        self.region_map: Optional[RegionMap] = (
            RegionMap.from_config(netem.topology, self.config)
            if self.config.regionalized
            else None
        )
        self._regions: dict[str, RegionController] = {}
        self._home_region: dict[str, str] = {}
        #: Per-fleet-round decision latency: max over regions of the
        #: (plan + act) wall time, plus the arbiter's resolution time —
        #: the fleet-level latency had regions run in parallel.
        self.epoch_decision_seconds: list[float] = []
        self.round_stats: list[RegionRoundStats] = []
        #: Fleet epochs completed (both the legacy and regionalized
        #: paths); drives the status publisher's k-epoch cadence.
        self.epoch_count = 0
        #: Optional live status plane (see repro.obs.status); None by
        #: default, so batch experiments run byte-identical to seed.
        self.status: Optional["StatusPublisher"] = None
        #: Optional checkpoint policy (see repro.snap.policy); None by
        #: default, so batch experiments run byte-identical to seed.
        self.checkpoints = None
        #: Orchestrator-failover state: while suspended, no epoch task
        #: fires and recoveries are deferred (see faults.injector's
        #: OrchestratorKill handling).
        self.suspended = False
        self._suspended_intervals: list[float] = []
        #: (down_at, up_at) per outage; up_at is None while still down.
        self.outages: list[tuple[float, Optional[float]]] = []

    # -- accessors ---------------------------------------------------------

    @property
    def engine(self) -> "Engine":
        return self.netem.engine

    @property
    def monitor(self) -> Optional[NetMonitor]:
        """The shared fleet monitor (None until the first tenant)."""
        return self._monitor

    @property
    def tenants(self) -> list[str]:
        """Managed application names, in registration order."""
        return list(self._controllers)

    @property
    def regionalized(self) -> bool:
        return self.region_map is not None

    def region_controller(self, name: str) -> RegionController:
        """The named region's runtime (created on first use)."""
        if self.region_map is None:
            raise SchedulingError("control plane is not regionalized")
        region = self._regions.get(name)
        if region is None:
            spec = self.region_map.spec(name)
            if self._monitor is None:
                self._monitor = NetMonitor(
                    self.netem, None, tracer=self.tracer
                )
            region = RegionController(
                spec,
                self._monitor.region_view(name, spec.nodes),
                region_map=self.region_map,
                tracer=self.tracer,
            )
            self._regions[name] = region
        return region

    def home_region(self, app: str) -> Optional[str]:
        """The region running this tenant's control loop (None on the
        legacy path)."""
        return self._home_region.get(app)

    def controller(self, app: str) -> BandwidthController:
        try:
            return self._controllers[app]
        except KeyError:
            raise SchedulingError(
                f"app {app!r} is not managed by this control plane"
            ) from None

    # -- monitor sharing ---------------------------------------------------

    def monitor_for(
        self,
        probe_config: Optional[ProbeConfig],
        *,
        assignments: Optional[Mapping[str, str]] = None,
    ) -> NetMonitor:
        """The monitor a new tenant should use.

        With probe sharing on, every tenant gets the one fleet monitor
        (created from the *first* tenant's probe configuration — later
        tenants share its cadence parameters).  Otherwise each call
        returns a fresh private monitor, the legacy behaviour.

        On a regionalized control plane, ``assignments`` (the tenant's
        pod → node map) routes the tenant to its home region's scoped
        monitor view, so its startup flood and epoch probing stay
        inside the region.
        """
        if not self.config.probe_sharing:
            return NetMonitor(self.netem, probe_config, tracer=self.tracer)
        if self._monitor is None:
            self._monitor = NetMonitor(
                self.netem, probe_config, tracer=self.tracer
            )
        if self.region_map is not None and assignments:
            home = self.region_map.home_of_nodes(assignments.values())
            return self.region_controller(home).monitor
        return self._monitor

    def startup_probe(self, monitor: NetMonitor) -> int:
        """Run a tenant's startup max-capacity round on ``monitor``.

        Returns the number of links actually flooded — zero when the
        shared monitor probed them all within its cooldown already.
        """
        return monitor.probe_all_links(
            force=not self.config.startup_probe_respects_cooldown
        )

    # -- crash recovery ----------------------------------------------------

    def enable_recovery(
        self, detector: "FailureDetector"
    ) -> "RecoveryCoordinator":
        """Wire a failure detector's confirmations into crash recovery.

        Pods on a node the detector confirms dead are evicted and
        re-placed on surviving nodes through the migration machinery,
        arbitrated by the fleet arbiter across tenants.  Returns the
        coordinator (also kept on ``self.recovery``).
        """
        from ..faults.recovery import RecoveryCoordinator

        if self.recovery is None:
            self.recovery = RecoveryCoordinator(self, tracer=self.tracer)
        detector.on_confirmed_dead(self.recovery.recover_from)
        return self.recovery

    # -- tenant lifecycle --------------------------------------------------

    def register(self, controller: BandwidthController) -> None:
        """Adopt a controller into the fleet epoch loop.

        Tenants sharing a ``headroom_interval_s`` share one periodic
        task; a new cadence arms a new task starting now.  The
        controller must not also be started standalone.
        """
        app = controller.app
        if app in self._controllers:
            raise SchedulingError(
                f"app {app!r} is already managed by this control plane"
            )
        self._controllers[app] = controller
        if self.region_map is not None:
            self._assign_home(controller)
        interval = controller.config.probe.headroom_interval_s
        if interval not in self._tasks and not self.suspended:
            self._tasks[interval] = self.engine.every(
                interval, partial(self.run_epoch, interval)
            )
        if self.suspended and interval not in self._suspended_intervals:
            self._suspended_intervals.append(interval)

    def _assign_home(
        self, controller: BandwidthController, cause: Optional[int] = None
    ) -> None:
        """(Re)home a tenant in the region hosting most of its pods.

        Homing follows the pods: after a cross-region handoff shifts the
        majority, the tenant's control loop — and its region-scoped
        monitor — move with them.
        """
        app = controller.app
        deployment = self.orchestrator.deployment(app)
        home = self.region_map.home_of_nodes(deployment.bindings.values())
        previous = self._home_region.get(app)
        if previous == home:
            return
        self._home_region[app] = home
        region = self.region_controller(home)
        controller.region = region
        controller.monitor = region.monitor
        if self.tracer.enabled:
            self.tracer.emit(
                "region.assigned",
                self.netem.now,
                app=app,
                cause=cause,
                region=home,
                previous=previous,
                nodes=sorted(region.nodes),
            )

    def deregister(self, app: str) -> None:
        """Drop a tenant (e.g. on teardown); idle cadences are disarmed."""
        controller = self._controllers.pop(app, None)
        self._home_region.pop(app, None)
        if controller is None:
            return
        interval = controller.config.probe.headroom_interval_s
        still_used = any(
            c.config.probe.headroom_interval_s == interval
            for c in self._controllers.values()
        )
        if not still_used and interval in self._tasks:
            self._tasks.pop(interval).stop()

    def stop(self) -> None:
        """Disarm every epoch task (tenants stay registered)."""
        for task in self._tasks.values():
            task.stop()
        self._tasks = {}

    # -- the fleet epoch ---------------------------------------------------

    def run_epoch(
        self, interval: Optional[float] = None
    ) -> list[ControllerIteration]:
        """One fleet epoch over the tenants of one probing cadence.

        Phases: every tenant observes (flow sync + probing, sharing one
        probed-link set so each link is probed at most once), every
        tenant plans, then tenants act ordered by violation severity
        (worst first; ties by app name) under the arbiter.  With
        ``interval=None`` all tenants participate (manual driving).
        """
        group = [
            controller
            for controller in self._controllers.values()
            if interval is None
            or controller.config.probe.headroom_interval_s == interval
        ]
        if not group:
            return []
        if self.region_map is not None:
            iterations = self._run_fleet_round(group)
            self._end_epoch()
            return iterations
        if self.arbiter is not None:
            self.arbiter.begin_epoch(self.netem.now)
        shared_probed: Optional[set[tuple[str, str]]] = (
            set() if self.config.probe_sharing else None
        )
        for controller in group:
            controller.observe(shared_probed=shared_probed)
        ranked = sorted(
            ((controller.plan(), controller) for controller in group),
            key=lambda pair: (-pair[0], pair[1].app),
        )
        iterations = [
            controller.act(self.arbiter) for _, controller in ranked
        ]
        if self.config.ledger_checks:
            check_cluster_ledger(self.orchestrator.cluster)
        self._end_epoch()
        return iterations

    def attach_status(self, publisher: "StatusPublisher") -> None:
        """Opt in to the live status plane: ``publisher.on_epoch`` fires
        at the end of every fleet epoch.  Never attached by the batch
        experiments, whose output stays byte-identical to seed."""
        self.status = publisher

    def attach_checkpoints(self, policy) -> None:
        """Opt in to periodic checkpointing: ``policy.on_epoch`` fires
        at the end of every fleet epoch (see repro.snap.policy).  Never
        attached by plain batch runs, which stay byte-identical."""
        self.checkpoints = policy

    def _end_epoch(self) -> None:
        self.epoch_count += 1
        if self.status is not None:
            self.status.on_epoch(self.netem.now, self.epoch_count)
        if self.checkpoints is not None:
            self.checkpoints.on_epoch(self.netem.now, self.epoch_count)

    # -- orchestrator failover ---------------------------------------------

    def suspend(self) -> None:
        """The orchestrator process dies: disarm every epoch task and
        defer recovery decisions until :meth:`resume`.

        The substrate is untouched — flows keep flowing, the failure
        detector keeps beating.  Only decision making stops.
        """
        if self.suspended:
            return
        self.suspended = True
        self._suspended_intervals = sorted(self._tasks)
        self.outages.append((self.netem.now, None))
        self.stop()
        if self.tracer.enabled:
            self.tracer.emit(
                "orchestrator.suspended",
                self.netem.now,
                epoch=self.epoch_count,
                cadences=list(self._suspended_intervals),
            )

    def resume(self) -> list:
        """The orchestrator comes back: re-arm the epoch cadences (first
        firing one full interval from now, like a fresh boot) and drain
        recoveries that were confirmed during the outage.  Returns the
        recovery actions taken by the drain."""
        if not self.suspended:
            return []
        self.suspended = False
        down_at, _ = self.outages[-1]
        self.outages[-1] = (down_at, self.netem.now)
        for interval in self._suspended_intervals:
            self._tasks[interval] = self.engine.every(
                interval, partial(self.run_epoch, interval)
            )
        self._suspended_intervals = []
        if self.tracer.enabled:
            self.tracer.emit(
                "orchestrator.resumed",
                self.netem.now,
                epoch=self.epoch_count,
                outage_s=self.netem.now - down_at,
            )
        if self.recovery is not None:
            return self.recovery.drain_deferred()
        return []

    # -- the regionalized fleet round --------------------------------------

    def _run_fleet_round(
        self, group: list[BandwidthController]
    ) -> list[ControllerIteration]:
        """One fleet round: every region runs its local observe/plan/act
        against its eventually-consistent claim view, then the arbiter
        resolves the round's claim batches and brokers handoffs.

        The recorded decision latency is ``max`` over the regions' plan
        + act wall time (regions are independent — a real fleet runs
        them in parallel) plus the arbiter's resolution time.
        """
        arbiter = self.arbiter
        now = self.netem.now
        arbiter.begin_epoch(now)
        epoch = arbiter.epoch_count
        published = arbiter.published_claims()
        by_region: dict[str, list[BandwidthController]] = {}
        for controller in group:
            home = self._home_region.get(controller.app)
            if home is None:
                self._assign_home(controller)
                home = self._home_region[controller.app]
            by_region.setdefault(home, []).append(controller)
        iterations: list[ControllerIteration] = []
        region_decision = 0.0
        batch_events: dict[str, int] = {}
        for name in sorted(by_region):
            region = self.region_controller(name)
            tenants = by_region[name]
            region.begin_round(epoch, published)
            shared_probed: Optional[set[tuple[str, str]]] = (
                set() if self.config.probe_sharing else None
            )
            for controller in tenants:
                controller.observe(shared_probed=shared_probed)
            started = perf_counter()
            ranked = sorted(
                ((controller.plan(), controller) for controller in tenants),
                key=lambda pair: (-pair[0], pair[1].app),
            )
            for severity, controller in ranked:
                region.set_acting_context(controller.app, severity)
                iterations.append(controller.act(region))
            region.clear_acting_context()
            batch = region.drain_batch()
            arbiter.submit_batch(batch)
            if self.tracer.enabled and batch:
                batch_events[name] = self.tracer.emit(
                    "claim.batch",
                    now,
                    epoch=epoch,
                    region=name,
                    claims=[
                        {"app": c.app, "node": c.node, "severity": c.severity}
                        for c in batch
                    ],
                )
            for conflict in region.drain_conflicts():
                arbiter.record_conflict(*conflict)
            decision = perf_counter() - started
            region_decision = max(region_decision, decision)
            stats = RegionRoundStats(
                region=name,
                epoch=epoch,
                tenants=len(tenants),
                decision_seconds=decision,
                claims=len(batch),
                handoffs_requested=region.queued_handoffs,
                max_severity=ranked[0][0] if ranked else 0.0,
            )
            self.round_stats.append(stats)
            if self.tracer.enabled:
                self.tracer.emit(
                    "region.epoch",
                    now,
                    epoch=epoch,
                    region=name,
                    tenants=len(tenants),
                    claims=len(batch),
                    handoffs=stats.handoffs_requested,
                    max_severity=stats.max_severity,
                )
        started = perf_counter()
        self._resolve_claims(epoch, now, batch_events)
        self._broker_handoffs()
        self.epoch_decision_seconds.append(
            region_decision + (perf_counter() - started)
        )
        if self.config.ledger_checks:
            check_cluster_ledger(self.orchestrator.cluster)
        return iterations

    def _resolve_claims(
        self,
        epoch: int,
        now: float,
        batch_events: Optional[dict[str, int]] = None,
    ) -> None:
        """Arbiter resolution: order the round's claim batches, record
        cross-region collisions, publish the winners."""
        collisions = self.arbiter.resolve(now)
        if self.tracer.enabled:
            batch_events = batch_events or {}
            for loser, winner in collisions:
                self.tracer.emit(
                    "claim.conflict",
                    now,
                    app=loser.app,
                    epoch=epoch,
                    cause=batch_events.get(loser.region),
                    node=loser.node,
                    loser_region=loser.region,
                    winner_app=winner.app,
                    winner_region=winner.region,
                    loser_severity=loser.severity,
                    winner_severity=winner.severity,
                )

    # -- two-phase cross-region handoffs -----------------------------------

    def _broker_handoffs(self) -> None:
        """Review the round's handoff requests in fleet claim order."""
        requests: list[HandoffRequest] = []
        for name in sorted(self._regions):
            requests.extend(self._regions[name].drain_handoffs())
        requests.sort(
            key=lambda r: (
                -r.severity,
                r.epoch,
                r.source_region,
                r.app,
                r.component,
            )
        )
        for request in requests:
            self._review_handoff(request)

    def _review_handoff(
        self, request: HandoffRequest, *, synchronous: bool = False
    ) -> None:
        """Phase 1+2: the arbiter checks its board and releases the
        source's stake; the destination admit runs one control RTT
        later (immediately when ``synchronous`` or the RTT is zero)."""
        arbiter = self.arbiter
        now = self.netem.now
        arbiter.handoffs.append(request)
        held = arbiter.board_claim(request.target_node)
        if held is not None and (
            held.app != request.app or held.component != request.component
        ):
            request.phase = "denied"
            request.completed_at = now
            request.note = (
                f"target held by {held.app!r} ({held.region})"
            )
            arbiter.record_conflict(
                now, request.app, request.component, request.target_node, None
            )
            if self.tracer.enabled:
                self.tracer.emit(
                    "handoff.denied",
                    now,
                    app=request.app,
                    cause=request.request_event,
                    component=request.component,
                    node=request.target_node,
                    holder_app=held.app,
                    holder_region=held.region,
                )
            self._settle_handoff(request)
            return
        request.phase = "released"
        request.released_at = now
        if self.tracer.enabled:
            request.release_event = self.tracer.emit(
                "handoff.released",
                now,
                app=request.app,
                cause=request.request_event,
                component=request.component,
                source_region=request.source_region,
                target_region=request.target_region,
                source_node=request.source_node,
                target_node=request.target_node,
            )
        arbiter.reserve_for_handoff(request)
        delay = self.config.handoff_rtt_s
        if synchronous or delay <= 0:
            self._admit_handoff(request)
        else:
            self.engine.schedule_in(
                delay, partial(self._admit_handoff, request)
            )

    def _admit_handoff(self, request: HandoffRequest) -> None:
        """Phase 3: the destination region admits (or aborts) the move.

        The only ledger mutation is the single atomic
        ``Orchestrator.migrate`` below, so ``check_cluster_ledger``
        holds before, between, and after every handoff phase.
        """
        if request.phase != "released":
            return
        now = self.netem.now
        app = request.app
        controller = self._controllers.get(app)
        abort_note: Optional[str] = None
        if controller is None:
            abort_note = "tenant deregistered during handoff"
        else:
            deployment = self.orchestrator.deployment(app)
            if deployment.node_of(request.component) != request.source_node:
                abort_note = "component moved during handoff"
            elif request.target_node in self.netem.topology.down_nodes:
                abort_note = "target node went down"
            else:
                refusal = self.orchestrator.can_admit(
                    app, request.component, request.target_node
                )
                if refusal is not None:
                    abort_note = f"destination cannot admit: {refusal}"
        if abort_note is None:
            restart = controller.migration_restart_s(
                request.component, request.target_node
            )
            admit_event = None
            if self.tracer.enabled:
                admit_event = self.tracer.emit(
                    "handoff.admitted",
                    now,
                    app=app,
                    cause=request.release_event,
                    component=request.component,
                    target_region=request.target_region,
                    target_node=request.target_node,
                    restart_s=restart,
                )
            request.phase = "admitted"
            request.admitted_at = now
            try:
                self.orchestrator.migrate(
                    app,
                    request.component,
                    request.target_node,
                    reason=request.reason,
                    restart_override_s=restart,
                    trace_cause=admit_event,
                )
            except MigrationError as error:
                abort_note = str(error)
            else:
                request.phase = "committed"
                request.completed_at = now
                controller.note_external_migration(request.component, now)
                controller.binding.sync_flows()
                self.engine.schedule_in(
                    restart + 1e-6, controller.binding.sync_flows
                )
                if self.tracer.enabled:
                    self.tracer.emit(
                        "handoff.committed",
                        now,
                        app=app,
                        cause=admit_event,
                        component=request.component,
                        source_region=request.source_region,
                        target_region=request.target_region,
                        node=request.target_node,
                        latency_s=request.latency_s,
                    )
                self._settle_handoff(request)
                self._assign_home(controller, cause=request.release_event)
                if self.config.ledger_checks:
                    check_cluster_ledger(self.orchestrator.cluster)
                return
        request.phase = "aborted"
        request.completed_at = now
        request.note = abort_note
        self.arbiter.release_handoff_reservation(request)
        if self.tracer.enabled:
            self.tracer.emit(
                "handoff.aborted",
                now,
                app=app,
                cause=request.release_event or request.request_event,
                component=request.component,
                target_node=request.target_node,
                note=abort_note,
            )
        self._settle_handoff(request)
        if self.config.ledger_checks:
            check_cluster_ledger(self.orchestrator.cluster)

    def _settle_handoff(self, request: HandoffRequest) -> None:
        region = self._regions.get(request.source_region)
        if region is not None:
            region.handoff_settled(request)

    def broker_recovery_handoff(
        self, request: HandoffRequest
    ) -> Optional[str]:
        """Run the full two-phase handoff synchronously for a crash
        recovery; returns the granted node (None when denied/aborted)."""
        self._review_handoff(request, synchronous=True)
        return (
            request.target_node if request.phase == "committed" else None
        )
