"""Code fingerprinting for cache invalidation.

A cached cell result is only valid while the code that produced it is
unchanged.  Rather than versioning by hand, the cache key embeds a
SHA-256 fingerprint of the *source text* of the modules a sweep
exercises (by default the whole ``repro`` package): edit any line of
any fingerprinted module and every dependent cache entry silently
becomes a miss.

Fingerprints hash (relative path, file bytes) pairs in sorted path
order, so they are stable across machines and independent of import
order or ``.pyc`` state.
"""

from __future__ import annotations

import hashlib
import importlib
from functools import lru_cache
from pathlib import Path
from typing import Sequence


def _module_sources(name: str) -> list[tuple[str, Path]]:
    """(label, path) pairs for every source file of module ``name``.

    A package contributes every ``*.py`` beneath its directory; a plain
    module contributes its single file.  Modules without a source file
    (builtins, namespace oddities) contribute nothing but their name.
    """
    module = importlib.import_module(name)
    paths = getattr(module, "__path__", None)
    if paths:  # package: walk every source file beneath it
        pairs = []
        for root in sorted(str(p) for p in paths):
            base = Path(root)
            pairs.extend(
                (f"{name}/{path.relative_to(base).as_posix()}", path)
                for path in sorted(base.rglob("*.py"))
            )
        return pairs
    source = getattr(module, "__file__", None)
    if source is None:
        return []
    return [(name, Path(source))]


@lru_cache(maxsize=32)
def code_fingerprint(modules: Sequence[str] = ("repro",)) -> str:
    """Hex SHA-256 over the source text of ``modules`` (sorted, stable).

    Args:
        modules: importable module or package names.  Must be hashable
            (pass a tuple); results are memoized per process since
            source files do not change mid-run.
    """
    digest = hashlib.sha256()
    for name in sorted(set(modules)):
        digest.update(name.encode())
        digest.update(b"\x00")
        for label, path in _module_sources(name):
            digest.update(label.encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
    return digest.hexdigest()
