"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.mesh.tracegen import (
    ar1_trace,
    citylab_link_trace,
    citylab_stable_link_trace,
    citylab_variable_link_trace,
    step_trace,
    trace_with_fades,
)


class TestAr1:
    def test_hits_target_mean(self):
        trace = ar1_trace(20.0, 0.1, 3600.0, rng=np.random.default_rng(0))
        assert trace.stats().mean_mbps == pytest.approx(20.0, rel=0.05)

    def test_hits_target_std(self):
        trace = ar1_trace(20.0, 0.1, 7200.0, rng=np.random.default_rng(1))
        assert trace.stats().rel_std == pytest.approx(0.10, abs=0.03)

    def test_values_floored(self):
        trace = ar1_trace(
            1.0, 2.0, 600.0, rng=np.random.default_rng(2), floor_mbps=0.5
        )
        assert trace.stats().min_mbps >= 0.5

    def test_deterministic_given_rng(self):
        a = ar1_trace(10.0, 0.2, 100.0, rng=np.random.default_rng(3))
        b = ar1_trace(10.0, 0.2, 100.0, rng=np.random.default_rng(3))
        assert (a.values == b.values).all()

    def test_bad_phi_raises(self):
        with pytest.raises(TraceError):
            ar1_trace(10.0, 0.1, 100.0, phi=1.0)

    def test_bad_duration_raises(self):
        with pytest.raises(TraceError):
            ar1_trace(10.0, 0.1, 0.0)

    def test_negative_rel_std_raises(self):
        with pytest.raises(TraceError):
            ar1_trace(10.0, -0.1, 100.0)

    def test_zero_rel_std_is_constant(self):
        trace = ar1_trace(10.0, 0.0, 100.0, rng=np.random.default_rng(4))
        assert trace.stats().std_mbps == 0.0


class TestFades:
    def test_fades_reduce_capacity(self):
        base = ar1_trace(20.0, 0.0, 3600.0, rng=np.random.default_rng(5))
        faded = trace_with_fades(
            base,
            fade_rate_per_hour=30.0,
            fade_depth=(0.5, 0.5),
            rng=np.random.default_rng(6),
        )
        assert faded.stats().min_mbps <= 10.5
        assert faded.stats().mean_mbps < base.stats().mean_mbps

    def test_zero_rate_leaves_trace_unchanged(self):
        base = ar1_trace(20.0, 0.1, 600.0, rng=np.random.default_rng(7))
        faded = trace_with_fades(
            base, fade_rate_per_hour=0.0, rng=np.random.default_rng(8)
        )
        assert (faded.values == base.values).all()

    def test_negative_rate_raises(self):
        base = ar1_trace(20.0, 0.1, 60.0)
        with pytest.raises(TraceError):
            trace_with_fades(base, fade_rate_per_hour=-1.0)


class TestStepTrace:
    def test_segments(self):
        trace = step_trace([(10.0, 25.0), (5.0, 7.0), (10.0, 25.0)])
        assert trace.value_at(0.0) == 25.0
        assert trace.value_at(9.5) == 25.0
        assert trace.value_at(10.0) == 7.0
        assert trace.value_at(14.9) == 7.0
        assert trace.value_at(15.0) == 25.0

    def test_empty_raises(self):
        with pytest.raises(TraceError):
            step_trace([])

    def test_zero_duration_segment_raises(self):
        with pytest.raises(TraceError):
            step_trace([(0.0, 5.0)])


class TestCityLabProfiles:
    def test_stable_link_matches_fig2(self):
        trace = citylab_stable_link_trace(7200.0, rng=np.random.default_rng(9))
        stats = trace.stats()
        assert stats.mean_mbps == pytest.approx(19.9, rel=0.15)
        assert stats.rel_std == pytest.approx(0.10, abs=0.06)

    def test_variable_link_matches_fig2(self):
        trace = citylab_variable_link_trace(
            7200.0, rng=np.random.default_rng(10)
        )
        stats = trace.stats()
        assert stats.mean_mbps == pytest.approx(7.62, rel=0.2)
        assert stats.rel_std == pytest.approx(0.27, abs=0.12)

    def test_variable_link_noisier_than_stable(self):
        rng = np.random.default_rng(11)
        stable = citylab_stable_link_trace(3600.0, rng=rng)
        variable = citylab_variable_link_trace(3600.0, rng=rng)
        assert variable.stats().rel_std > stable.stats().rel_std

    def test_link_trace_variability_classes(self):
        rng = np.random.default_rng(12)
        low = citylab_link_trace(15.0, 3600.0, variability="low", rng=rng)
        high = citylab_link_trace(15.0, 3600.0, variability="high", rng=rng)
        assert high.stats().rel_std > low.stats().rel_std

    def test_unknown_variability_raises(self):
        with pytest.raises(TraceError):
            citylab_link_trace(15.0, variability="extreme")
