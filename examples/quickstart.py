#!/usr/bin/env python3
"""Quickstart: schedule an application DAG onto a community Wi-Fi mesh.

Walks the whole public API in one sitting:

1. build a mesh topology (the paper's 5-node CityLab subset),
2. describe an application as a component DAG with bandwidth-annotated
   edges,
3. place it with the default k3s scheduler and with both BASS
   heuristics, and compare what lands where,
4. start the network emulation, throttle a link, and watch the
   bandwidth controller migrate the affected component.

Run:  python examples/quickstart.py
"""

from repro import (
    BassConfig,
    BassScheduler,
    ClusterState,
    Component,
    ComponentDAG,
    K3sScheduler,
    NetworkEmulator,
    citylab_subset,
)
from repro.experiments.common import build_env, deploy_app, run_timeline


def build_application() -> ComponentDAG:
    """A little analytics pipeline: ingest → filter → {store, alert}."""
    dag = ComponentDAG("analytics")
    dag.add_component(Component("ingest", cpu=2, memory_mb=512))
    dag.add_component(Component("filter", cpu=4, memory_mb=1024))
    dag.add_component(Component("store", cpu=2, memory_mb=2048))
    dag.add_component(Component("alert", cpu=1, memory_mb=256))
    dag.add_dependency("ingest", "filter", bandwidth_mbps=12.0)
    dag.add_dependency("filter", "store", bandwidth_mbps=5.0)
    dag.add_dependency("filter", "alert", bandwidth_mbps=0.2)
    return dag.validate()


def compare_placements() -> None:
    dag = build_application()
    print(f"application: {dag.app}, {len(dag)} components, "
          f"{dag.edge_count()} edges, "
          f"{dag.total_bandwidth_mbps():.1f} Mbps annotated\n")

    for label, make_assignments in [
        ("k3s (bandwidth-oblivious)",
         lambda topo, cluster, netem: K3sScheduler().schedule(
             dag.to_pods(), cluster)),
        ("BASS breadth-first",
         lambda topo, cluster, netem: BassScheduler("bfs").schedule(
             dag, cluster, netem)),
        ("BASS longest-path",
         lambda topo, cluster, netem: BassScheduler("longest_path").schedule(
             dag, cluster, netem)),
    ]:
        topology = citylab_subset()
        cluster = ClusterState.from_topology(topology)
        netem = NetworkEmulator(topology)
        assignments = make_assignments(topology, cluster, netem)
        crossings = sum(
            1
            for src, dst, _ in dag.edges()
            if assignments[src] != assignments[dst]
        )
        print(f"{label:28s} -> {assignments}   ({crossings} edges cross "
              "the wireless mesh)")


def watch_a_migration() -> None:
    print("\n--- dynamic re-orchestration ---")
    env = build_env(seed=7, with_traces=False)

    class AnalyticsApp:
        name = "analytics"

        def build_dag(self):
            return build_application()

        def update_demands(self, binding, t):
            pass

        def on_deployed(self, binding):
            pass

    config = BassConfig().with_migration(cooldown_s=0.0)
    handle = deploy_app(env, AnalyticsApp(), "bass-longest-path",
                        config=config)
    print("initial placement:", handle.deployment.bindings)

    # Force the pipeline apart so an inter-node edge exists, then
    # strangle the link under it.
    node_of = handle.deployment.node_of
    if node_of("ingest") == node_of("filter"):
        target = next(
            n for n in env.cluster.node_names if n != node_of("filter")
            and env.cluster.node(n).can_fit(
                handle.dag.component("ingest").resources)
        )
        env.orchestrator.migrate("analytics", "ingest", target,
                                 reason="demo split")
        handle.binding.sync_flows()
    src, dst = node_of("ingest"), node_of("filter")
    print(f"ingest -> filter edge now crosses {src} -> {dst}; "
          "throttling that path to 2 Mbps ...")
    for a, b in handle.monitor.links_of_path(src, dst):
        env.topology.link(a, b).set_rate_limit(2.0)

    run_timeline(env, 120.0)
    print("migrations performed:")
    for record in handle.deployment.migrations:
        print(f"  t={record.time:6.1f}s  {record.pod_name}: "
              f"{record.from_node} -> {record.to_node}  ({record.reason})")
    print("final placement:", handle.deployment.bindings)
    print("goodput on ingest->filter edge:",
          f"{handle.binding.goodput('ingest', 'filter'):.2f}")


def explain_the_decision() -> None:
    print("\n--- placement explanation ---")
    from repro.core import explain_placement

    topology = citylab_subset()
    cluster = ClusterState.from_topology(topology)
    netem = NetworkEmulator(topology)
    explanation = explain_placement(
        build_application(), cluster, netem, heuristic="longest_path"
    )
    print(explanation.render())


if __name__ == "__main__":
    compare_placements()
    watch_a_migration()
    explain_the_decision()
