"""k3s-like orchestration substrate.

Provides the cluster-side building blocks BASS extends: resource
accounting per node, pod specifications carrying bandwidth annotations,
deployment state, a bandwidth-*oblivious* baseline scheduler faithful to
k3s/Kubernetes behaviour (one pod at a time, CPU/memory filtering,
least-allocated scoring), and an orchestrator runtime that executes
placements and migrations with the paper's restart-cost model.
"""

from .deployment import Deployment, MigrationRecord
from .k3s import K3sScheduler
from .orchestrator import ClusterState, Orchestrator
from .pod import PodSpec
from .resources import NodeResources, ResourceSpec

__all__ = [
    "ClusterState",
    "Deployment",
    "K3sScheduler",
    "MigrationRecord",
    "NodeResources",
    "Orchestrator",
    "PodSpec",
    "ResourceSpec",
]
