"""Every example script runs cleanly end to end.

Examples are the first thing a new user executes; these smoke tests
keep them from rotting as the library evolves.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they show"
