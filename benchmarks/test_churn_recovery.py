"""Node-churn recovery: detection latency, time-to-recover, goodput.

The acceptance contract for the chaos layer (beyond the paper's
tables):

* detection latency is a real, positive, heartbeat-paced quantity;
* the lost pod is re-placed within two control epochs of the crash;
* goodput recovers to >= 90 % of its pre-crash level, while a k3s-style
  baseline that never re-places stays at zero;
* the flight recorder reconstructs the full cause chain
  ``fault.injected -> node.suspected -> node.confirmed_dead ->
  recovery.plan -> restart``;
* with two tenants crashed at once, the fleet arbiter serializes the
  recovery round (conflicts counted, ledger clean).
"""

from repro.core.controlplane import check_cluster_ledger
from repro.experiments.churn import (
    churn_comparison,
    churn_recovery,
    churn_seed_sweep,
)
from repro.experiments.common import build_env
from repro.obs.report import recovery_chains, render_report
from repro.obs.trace import Tracer

import pytest

from _reporting import fmt, run_once, save_table

DURATION_S = 240.0
CRASH_AT_S = 60.0


@pytest.mark.benchmark(group="churn")
def test_recovery_beats_k3s_baseline(benchmark):
    bass, k3s = run_once(
        benchmark,
        lambda: churn_comparison(
            duration_s=DURATION_S, crash_at_s=CRASH_AT_S
        ),
    )
    save_table(
        "churn_recovery",
        ["mode", "detect_s", "replace_s", "recover_s", "pre", "dip", "post"],
        [
            [
                r.label,
                fmt(r.detection_latency_s, 1),
                fmt(r.replacement_delay_s, 1)
                if r.replacement_delay_s is not None
                else "never",
                fmt(r.time_to_recover_s, 1)
                if r.time_to_recover_s is not None
                else "never",
                fmt(r.goodput_stats.pre_mean),
                fmt(r.goodput_stats.dip_min),
                fmt(r.goodput_stats.post_mean),
            ]
            for r in (bass, k3s)
        ],
        note=f"one sink crashed at t={CRASH_AT_S:.0f}s on the CityLab "
        "subset; 5 s heartbeats, confirm after 4 misses, 20 s restart",
    )
    # Detection is measured, not an oracle: strictly positive and
    # bounded by the confirmation timeout plus one heartbeat phase.
    assert bass.detection_latency_s is not None
    assert 0.0 < bass.detection_latency_s <= 25.0
    # Re-placement lands within two control epochs of the crash.
    assert bass.replacement_delay_s is not None
    assert bass.replacement_delay_s <= 2 * bass.epoch_interval_s
    # Goodput recovers to >= 90 % of the pre-crash level and the dip
    # was real (traffic actually stopped while the node was dead).
    assert bass.goodput_stats.dip_min == pytest.approx(0.0)
    assert bass.time_to_recover_s is not None
    assert (
        bass.goodput_stats.post_mean
        >= 0.9 * bass.goodput_stats.pre_mean
    )
    # The baseline detects but never re-places: goodput stays dark.
    assert k3s.detection_latency_s == bass.detection_latency_s
    assert k3s.recovered_pods == 0
    assert k3s.time_to_recover_s is None
    assert k3s.goodput[-1] == pytest.approx(0.0)


@pytest.mark.benchmark(group="churn")
def test_two_tenant_crash_is_arbitrated(benchmark):
    result = run_once(
        benchmark,
        lambda: churn_recovery(
            tenants=2, duration_s=DURATION_S, crash_at_s=CRASH_AT_S
        ),
    )
    save_table(
        "churn_two_tenant",
        ["tenants", "replaced", "stranded", "conflicts", "detect_s"],
        [
            [
                2,
                result.recovered_pods,
                result.stranded_pods,
                result.conflict_count,
                fmt(result.detection_latency_s, 1),
            ]
        ],
        note="both tenants lose their sink at once; one recovery round "
        "re-places both under the fleet arbiter",
    )
    # Both pods land somewhere, the race is accounted, the ledger holds.
    assert result.recovered_pods == 2
    assert result.stranded_pods == 0
    assert result.conflict_count >= 1
    targets = {a.to_node for a in result.actions}
    assert len(targets) == 2  # serialized onto distinct nodes


def test_trace_reconstructs_full_cause_chain():
    tracer = Tracer.with_instruments()
    result = churn_recovery(
        duration_s=DURATION_S, crash_at_s=CRASH_AT_S, tracer=tracer
    )
    assert result.recovered_pods == 1

    chains = recovery_chains(tracer.events)
    assert len(chains) == 1
    chain = chains[0]
    assert chain.complete
    assert chain.fault.kind == "fault.injected"
    assert chain.suspected.cause == chain.fault.id
    assert chain.confirmed.cause == chain.suspected.id
    assert chain.plan.cause == chain.confirmed.id
    assert chain.restarts[0].cause == chain.plan.id

    # The instruments derived the recovery metric set from the stream.
    registry = tracer.instruments.registry
    assert registry.counter("bass_recoveries_total").value == 1.0
    assert registry.counter("bass_node_failures_detected_total").value == 1.0
    latency = registry.histogram("bass_detection_latency_seconds")
    assert latency.count == 1
    assert latency.percentile(50) == pytest.approx(
        result.detection_latency_s
    )

    # And `bass-repro report` renders the chain end to end.
    report = render_report(tracer.events)
    assert "recoveries: 1" in report
    assert "fault.injected" in report
    assert "detection latency" in report


def test_two_tenant_ledger_clean_after_recovery():
    env = build_env(with_traces=False)
    churn_recovery(tenants=2, duration_s=DURATION_S, env=env)
    check_cluster_ledger(env.cluster)
    assert env.cluster.node("node2").allocated.cpu == 0.0


@pytest.mark.slow
def test_seeded_churn_sweep_recovers_across_seeds():
    """Heavier sweep (excluded from the CI fast path): randomized crash
    plans across seeds always detect and re-place, never silently lose
    the pod.  Runs through the sweep runner, so locally it parallelizes
    and memoizes like any other sweep."""
    results = churn_seed_sweep(seeds=tuple(range(6)), settle_s=120.0)
    assert len(results) == 6
    for result in results:
        assert result.detection_latency_s is not None
        assert result.detection_latency_s > 0
        assert result.recovered_pods == 1
        assert result.time_to_recover_s is not None
