"""Unit tests for OpenMetrics exposition and the rolling windows."""

import math

import pytest

from repro.obs.exposition import (
    CONTENT_TYPE,
    RollingPercentile,
    RollingRate,
    RollingWindows,
    escape_label_value,
    format_value,
    render_openmetrics,
    tick_profile_samples,
)
from repro.obs.instruments import InstrumentRegistry
from repro.obs.trace import TraceEvent


class TestEscaping:
    def test_empty_label_set_renders_bare_name(self):
        registry = InstrumentRegistry()
        registry.counter("bass_violations_total").inc(1.0)
        text = render_openmetrics(registry)
        assert "bass_violations_total 1\n" in text
        assert "bass_violations_total{" not in text

    def test_quote_escaped(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'

    def test_newline_escaped(self):
        assert escape_label_value("two\nlines") == "two\\nlines"

    def test_backslash_escaped(self):
        assert escape_label_value("a\\b") == "a\\\\b"

    def test_backslash_escaped_before_quote(self):
        # \" must become \\\" (escape the backslash, then the quote),
        # not \\" which a parser would read as an escaped quote.
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_escaped_values_in_rendered_output(self):
        registry = InstrumentRegistry()
        registry.counter("bass_faults_total", fault='cut "A"\n').inc(1.0)
        text = render_openmetrics(registry)
        assert 'bass_faults_total{fault="cut \\"A\\"\\n"} 1' in text


class TestOrdering:
    def _fill(self, registry, order):
        for mode in order:
            registry.counter("bass_probes_total", mode=mode).inc(1.0)
        registry.counter("bass_violations_total").inc(2.0)

    def test_output_independent_of_insertion_order(self):
        first = InstrumentRegistry()
        self._fill(first, ["headroom", "full"])
        second = InstrumentRegistry()
        self._fill(second, ["full", "headroom"])
        assert render_openmetrics(first) == render_openmetrics(second)

    def test_samples_sorted_by_name_then_labels(self):
        registry = InstrumentRegistry()
        registry.counter("bass_probes_total", mode="headroom").inc(1.0)
        registry.counter("bass_probes_total", mode="full").inc(1.0)
        registry.counter("bass_migrations_total").inc(1.0)
        lines = [
            line
            for line in render_openmetrics(registry).splitlines()
            if not line.startswith("#")
        ]
        assert lines == [
            "bass_migrations_total 1",
            'bass_probes_total{mode="full"} 1',
            'bass_probes_total{mode="headroom"} 1',
        ]

    def test_one_help_type_block_per_name(self):
        registry = InstrumentRegistry()
        registry.counter("bass_probes_total", mode="headroom").inc(1.0)
        registry.counter("bass_probes_total", mode="full").inc(1.0)
        text = render_openmetrics(registry)
        assert text.count("# HELP bass_probes_total") == 1
        assert text.count("# TYPE bass_probes_total counter") == 1

    def test_ends_with_eof_marker(self):
        assert render_openmetrics(InstrumentRegistry()).endswith("# EOF\n")


class TestHistogramRendering:
    def test_buckets_sum_count(self):
        registry = InstrumentRegistry()
        histogram = registry.histogram(
            "bass_handoff_latency_seconds", buckets=(1.0, 5.0)
        )
        histogram.observe(10.0, 0.5)
        histogram.observe(11.0, 4.0)
        histogram.observe(12.0, 50.0)
        text = render_openmetrics(registry)
        assert "# TYPE bass_handoff_latency_seconds histogram" in text
        assert 'bass_handoff_latency_seconds_bucket{le="1"} 1' in text
        assert 'bass_handoff_latency_seconds_bucket{le="5"} 2' in text
        assert 'bass_handoff_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "bass_handoff_latency_seconds_sum 54.5" in text
        assert "bass_handoff_latency_seconds_count 3" in text

    def test_histogram_labels_precede_le(self):
        registry = InstrumentRegistry()
        registry.histogram(
            "bass_handoff_latency_seconds", buckets=(1.0,), region="east"
        ).observe(1.0, 0.2)
        text = render_openmetrics(registry)
        assert (
            'bass_handoff_latency_seconds_bucket{region="east",le="1"} 1'
            in text
        )


class TestFormatValue:
    def test_integral_floats_lose_point(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"

    def test_fractional_kept(self):
        assert format_value(0.25) == "0.25"

    def test_non_finite(self):
        assert format_value(float("nan")) == "NaN"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"

    def test_content_type_pinned(self):
        assert CONTENT_TYPE.startswith("text/plain")


class TestRollingRate:
    def test_rate_within_window(self):
        rate = RollingRate(window_s=10.0, slots=10)
        for t in (1.0, 2.0, 3.0):
            rate.add(t)
        assert rate.rate(5.0) == pytest.approx(0.3)

    def test_old_samples_age_out(self):
        rate = RollingRate(window_s=10.0, slots=10)
        rate.add(1.0)
        assert rate.count(1.0) == 1
        assert rate.count(100.0) == 0

    def test_ring_reuse_after_wraparound(self):
        rate = RollingRate(window_s=10.0, slots=10)
        rate.add(1.0)
        rate.add(11.0)  # lands in the slot that held t=1.0's sample
        assert rate.count(11.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingRate(window_s=0.0)
        with pytest.raises(ValueError):
            RollingRate(slots=0)


class TestRollingPercentile:
    def test_empty_window_is_nan(self):
        p = RollingPercentile((1.0,), window_s=10.0, slots=5)
        assert math.isnan(p.percentile(0.0, 0.95))

    def test_overflow_bucket_is_inf(self):
        p = RollingPercentile((1.0,), window_s=10.0, slots=5)
        p.observe(1.0, 99.0)
        assert p.percentile(1.0, 0.95) == float("inf")

    def test_aging(self):
        p = RollingPercentile((1.0, 5.0), window_s=10.0, slots=5)
        p.observe(1.0, 4.0)
        assert p.percentile(1.0, 0.5) == 5.0
        assert math.isnan(p.percentile(100.0, 0.5))


class TestRollingWindows:
    def _probe(self, i, t, src="n1", dst="n2"):
        return TraceEvent(
            id=i, kind="probe.headroom", time=t, data={"src": src, "dst": dst}
        )

    def test_per_link_rates_and_cause_tracking(self):
        windows = RollingWindows(window_s=10.0, slots=10)
        windows.on_event(self._probe(1, 1.0))
        windows.on_event(self._probe(2, 2.0, src="n2", dst="n3"))
        windows.on_event(self._probe(3, 3.0))
        assert windows.value("probe_rate", 3.0) == pytest.approx(0.3)
        assert windows.link_probe_rates["n1->n2"].count(3.0) == 2
        assert windows.link_probe_rates["n2->n3"].count(3.0) == 1
        assert windows.last_event_id["probe_rate"] == 3

    def test_gauge_samples_render_through_exposition(self):
        windows = RollingWindows(window_s=10.0, slots=10)
        windows.on_event(self._probe(1, 1.0))
        windows.on_event(
            TraceEvent(
                id=2, kind="handoff.committed", time=2.0,
                data={"latency_s": 0.4},
            )
        )
        text = render_openmetrics(
            InstrumentRegistry(), windows, now=2.0
        )
        assert (
            'bass_rolling_probe_rate_per_second{scope="fleet"} 0.1' in text
        )
        assert 'bass_rolling_probe_rate_per_second{link="n1->n2"} 0.1' in text
        assert "bass_rolling_violation_rate_per_second 0" in text
        assert "bass_rolling_handoff_latency_p95_seconds 0.5" in text

    def test_nan_p95_gauges_omitted(self):
        windows = RollingWindows()
        text = render_openmetrics(InstrumentRegistry(), windows, now=0.0)
        assert "handoff_latency_p95" not in text
        assert "detection_latency_p95" not in text

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            RollingWindows().value("nope")


class TestTickProfileSamples:
    def _stats(self):
        phases = {
            "ticks": 30,
            "seconds": {
                "capacity_scan": 0.1, "bookkeeping": 0.05, "solve": 0.6,
            },
        }
        solver = {
            "full_solves": 1, "partial_solves": 4,
            "components_resolved": 9, "components": 3,
        }
        return phases, solver

    def test_rows_cover_ticks_phases_and_solver(self):
        phases, solver = self._stats()
        rows = tick_profile_samples(phases, solver)
        assert ("bass_tick_count", (), 30.0) in rows
        assert (
            "bass_tick_phase_seconds", (("phase", "solve"),), 0.6
        ) in rows
        assert ("bass_solver_partial_solves", (), 4.0) in rows
        assert ("bass_solver_components", (), 3.0) in rows

    def test_renders_as_gauges_with_help_text(self):
        phases, solver = self._stats()
        text = render_openmetrics(
            InstrumentRegistry(),
            extra_samples=tick_profile_samples(phases, solver),
        )
        assert "# TYPE bass_tick_phase_seconds gauge" in text
        assert "# HELP bass_tick_count Emulator fluid-model ticks" in text
        assert 'bass_tick_phase_seconds{phase="solve"} 0.6' in text
        assert "bass_solver_full_solves 1" in text

    def test_merges_with_rolling_window_samples_in_order(self):
        phases, solver = self._stats()
        windows = RollingWindows(window_s=10.0, slots=10)
        text = render_openmetrics(
            InstrumentRegistry(),
            windows,
            now=0.0,
            extra_samples=tick_profile_samples(phases, solver),
        )
        # One deterministic (name, labels) ordering across both sources.
        names = [
            line.split("{")[0].split(" ")[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        assert names == sorted(names)

    def test_empty_phase_dict_still_reports_tick_count(self):
        rows = tick_profile_samples({"ticks": 0, "seconds": {}}, {})
        assert rows == [("bass_tick_count", (), 0.0)]
