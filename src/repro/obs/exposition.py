"""OpenMetrics/Prometheus text exposition + O(1) rolling-window aggregates.

Two halves of the live ``/metrics`` endpoint:

* :func:`render_openmetrics` renders an entire
  :class:`~repro.obs.instruments.InstrumentRegistry` in the Prometheus
  text format — ``# HELP``/``# TYPE`` metadata, escaped label sets,
  histogram ``_bucket``/``_sum``/``_count`` families — with a
  deterministic ``(name, labels)`` ordering so two scrapes of the same
  state are byte-identical.
* :class:`RollingWindows` is a trace observer
  (:meth:`~repro.obs.trace.Tracer.add_observer`) maintaining
  time-windowed aggregates — probe rate per link, violation rate,
  handoff/detection latency p95 — in O(1) amortized work per sample,
  via fixed slot rings rather than per-sample lists.  These back both
  the rolling gauges in ``/metrics`` and the SLO watchdogs
  (:mod:`repro.obs.slo`).

Example:
    >>> from repro.obs.instruments import InstrumentRegistry
    >>> registry = InstrumentRegistry()
    >>> registry.counter("bass_probes_total", mode="headroom").inc(30.0)
    >>> print(render_openmetrics(registry), end="")
    # HELP bass_probes_total Net-monitor probes sent, by probe mode.
    # TYPE bass_probes_total counter
    bass_probes_total{mode="headroom"} 1
    # EOF
"""

from __future__ import annotations

import math
from typing import Optional

from .instruments import Counter, Gauge, Histogram, InstrumentRegistry

#: Content type a conforming scraper expects from ``/metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: HELP strings for the standard metric set (unknown names fall back to
#: a generic line so third-party instruments still render).
HELP_TEXT = {
    "bass_probes_total": "Net-monitor probes sent, by probe mode.",
    "bass_link_utilization": "Per-headroom-probe link utilization.",
    "bass_violations_total": "Goodput/utilization trigger trips.",
    "bass_violation_seconds": "Continuous-violation durations.",
    "bass_migrations_total": "Pod migrations committed.",
    "bass_migration_deflections_total": "Arbiter-deflected migrations.",
    "bass_restart_seconds": "Restart windows opened by migrations.",
    "bass_faults_total": "Injected faults, by kind.",
    "bass_node_failures_detected_total": "Nodes confirmed dead.",
    "bass_detection_latency_seconds": "Heartbeat failure-detection latency.",
    "bass_recoveries_total": "Crash-evicted pods re-placed.",
    "bass_recovery_failures_total": "Lost pods with no placement.",
    "bass_arbiter_conflicts_total": "Fleet-arbiter contention events.",
    "bass_handoffs_total": "Cross-region handoffs, by phase.",
    "bass_handoff_latency_seconds": "Handoff request-to-commit latency.",
    "bass_sweep_cells_total": "Sweep cells settled, by status.",
    "bass_sweep_cell_seconds": "Fresh sweep-cell execution time.",
    "bass_sweep_cells_per_second": "Closing sweep throughput.",
    "bass_sweep_cache_hit_rate": "Closing sweep cache hit rate.",
    "bass_sweep_queue_depth": (
        "Peak undispatched-chunk depth in the sweep work queue."
    ),
    "bass_sweep_steals_total": "Chunk remainders stolen from busy workers.",
    "bass_sweep_worker_crashes_total": "Sweep worker deaths survived.",
    "bass_sweep_worker_busy_fraction": (
        "Warm-worker busy time over lifetime, per worker."
    ),
    "bass_sweep_worker_cache_hit_rate": (
        "Shared result-store hit rate, per warm worker."
    ),
    "bass_rolling_probe_rate_per_second": (
        "Probe rate over the rolling window, fleet-wide and per link."
    ),
    "bass_rolling_violation_rate_per_second": (
        "Violation detections per second over the rolling window."
    ),
    "bass_rolling_handoff_latency_p95_seconds": (
        "p95 handoff latency over the rolling window."
    ),
    "bass_rolling_detection_latency_p95_seconds": (
        "p95 failure-detection latency over the rolling window."
    ),
    "bass_tick_count": "Emulator fluid-model ticks executed.",
    "bass_tick_phase_seconds": (
        "Cumulative emulator tick wall time, by phase (wall clock)."
    ),
    "bass_solver_full_solves": "From-scratch max-min solves.",
    "bass_solver_partial_solves": "Dirty-component incremental re-solves.",
    "bass_solver_components_resolved": (
        "Connected components re-solved across all partial solves."
    ),
    "bass_solver_components": "Connected components in the flow set.",
}


def escape_label_value(value: str) -> str:
    r"""Escape a label value per the OpenMetrics text format.

    Backslash, double-quote, and newline are the three characters the
    spec requires escaping inside a quoted label value.

    >>> escape_label_value('say "hi"\n')
    'say \\"hi\\"\\n'
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """Render a sample value: integral floats lose the trailing ``.0``
    (Prometheus style), non-finite values use Go spellings."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    """``{k="v",...}`` with escaped values, or ``""`` when unlabelled."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"' for key, value in labels
    )
    return "{" + inner + "}"


def _render_histogram(
    lines: list[str],
    name: str,
    labels: tuple[tuple[str, str], ...],
    histogram: Histogram,
) -> None:
    for bound, cumulative in zip(
        histogram.buckets, histogram.bucket_counts
    ):
        bucket_labels = labels + (("le", format_value(bound)),)
        lines.append(
            f"{name}_bucket{format_labels(bucket_labels)} "
            f"{format_value(cumulative)}"
        )
    inf_labels = labels + (("le", "+Inf"),)
    lines.append(
        f"{name}_bucket{format_labels(inf_labels)} "
        f"{format_value(histogram.bucket_counts[-1])}"
    )
    lines.append(f"{name}_sum{format_labels(labels)} {format_value(histogram.sum)}")
    lines.append(
        f"{name}_count{format_labels(labels)} {format_value(histogram.count)}"
    )


def tick_profile_samples(
    phase_stats: dict, solver_stats: dict
) -> list[tuple[str, tuple[tuple[str, str], ...], float]]:
    """``(name, labels, value)`` rows for the emulator's tick profile.

    Takes the plain dicts ``NetworkEmulator.tick_phase_stats()`` /
    ``solver_stats()`` return, so the scrape handler can expose the
    live numbers as transient gauges without writing them into any
    pickled registry state (serve checkpoints must not depend on when
    a scraper happened to hit ``/metrics``).
    """
    samples: list[tuple[str, tuple[tuple[str, str], ...], float]] = [
        ("bass_tick_count", (), float(phase_stats.get("ticks", 0)))
    ]
    for phase, seconds in sorted(
        (phase_stats.get("seconds") or {}).items()
    ):
        samples.append(
            ("bass_tick_phase_seconds", (("phase", str(phase)),),
             float(seconds))
        )
    for key, value in sorted(solver_stats.items()):
        samples.append((f"bass_solver_{key}", (), float(value)))
    return samples


def render_openmetrics(
    registry: InstrumentRegistry,
    windows: Optional["RollingWindows"] = None,
    *,
    now: Optional[float] = None,
    extra_samples: Optional[list] = None,
) -> str:
    """The whole registry (plus rolling gauges) in Prometheus text form.

    Samples are grouped per metric name under one ``# HELP``/``# TYPE``
    block and ordered deterministically by ``(name, labels)``; the
    output ends with the OpenMetrics ``# EOF`` marker.
    ``extra_samples`` takes additional bare ``(name, labels, value)``
    rows (e.g. :func:`tick_profile_samples`) merged into the same
    ordering.
    """
    samples: list[tuple[str, tuple[tuple[str, str], ...], object]] = list(
        registry.items()
    )
    if windows is not None:
        at = now if now is not None else windows.last_time
        samples.extend(windows.gauge_samples(at))
    if extra_samples:
        samples.extend(extra_samples)
    if windows is not None or extra_samples:
        samples.sort(key=lambda entry: (entry[0], entry[1]))
    lines: list[str] = []
    previous_name: Optional[str] = None
    for name, labels, instrument in samples:
        if name != previous_name:
            help_text = HELP_TEXT.get(name, "BASS reproduction metric.")
            if isinstance(instrument, Counter):
                family = "counter"
            elif isinstance(instrument, Histogram):
                family = "histogram"
            else:
                family = "gauge"
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {family}")
            previous_name = name
        if isinstance(instrument, Histogram):
            _render_histogram(lines, name, labels, instrument)
        elif isinstance(instrument, (Counter, Gauge)):
            lines.append(
                f"{name}{format_labels(labels)} "
                f"{format_value(instrument.value)}"
            )
        else:  # a bare (name, labels, value) rolling-gauge sample
            lines.append(
                f"{name}{format_labels(labels)} "
                f"{format_value(float(instrument))}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- rolling windows ----------------------------------------------------------


class RollingRate:
    """Events-per-second over a sliding window, O(1) per sample.

    The window is divided into ``slots`` fixed time slices; each sample
    lands in the slice covering its timestamp and a running total is
    kept, so :meth:`add` does constant work no matter the run length.
    Slices older than the window are retired lazily as time advances.

    >>> rate = RollingRate(window_s=10.0, slots=10)
    >>> for t in (0.5, 1.5, 2.5, 3.5):
    ...     rate.add(t)
    >>> rate.rate(4.0)
    0.4
    >>> rate.rate(104.0)  # everything aged out
    0.0
    """

    def __init__(self, window_s: float = 300.0, slots: int = 60) -> None:
        if window_s <= 0 or slots < 1:
            raise ValueError("window_s must be > 0 and slots >= 1")
        self.window_s = window_s
        self.slot_s = window_s / slots
        self.slots = slots
        self._slot_ids = [-1] * slots
        self._counts = [0] * slots
        self._total = 0

    def _advance(self, slot_id: int) -> int:
        """Claim the ring position for ``slot_id``, retiring stale data."""
        position = slot_id % self.slots
        if self._slot_ids[position] != slot_id:
            self._total -= self._counts[position]
            self._counts[position] = 0
            self._slot_ids[position] = slot_id
        return position

    def add(self, time: float, amount: int = 1) -> None:
        position = self._advance(int(time / self.slot_s))
        self._counts[position] += amount
        self._total += amount

    def count(self, now: float) -> int:
        """Samples inside ``[now - window, now]`` (O(slots), scrape-side)."""
        oldest = int(now / self.slot_s) - self.slots + 1
        return sum(
            count
            for slot_id, count in zip(self._slot_ids, self._counts)
            if slot_id >= oldest
        )

    def rate(self, now: float) -> float:
        return self.count(now) / self.window_s


class RollingPercentile:
    """Windowed percentile from per-slot bucket histograms.

    Each time slice keeps a fixed bucket-count array; observing is
    O(buckets) — constant — and the scrape-side percentile merges the
    live slices and walks the cumulative distribution, reporting the
    upper bound of the bucket containing the requested quantile.

    >>> p = RollingPercentile((1.0, 5.0, 10.0), window_s=60.0, slots=6)
    >>> for value in (0.2, 0.4, 0.6, 8.0):
    ...     p.observe(30.0, value)
    >>> p.percentile(30.0, 0.5)
    1.0
    >>> p.percentile(30.0, 0.95)
    10.0
    """

    def __init__(
        self,
        buckets: tuple[float, ...],
        *,
        window_s: float = 300.0,
        slots: int = 60,
    ) -> None:
        self.buckets = tuple(sorted(buckets))
        self.window_s = window_s
        self.slot_s = window_s / slots
        self.slots = slots
        width = len(self.buckets) + 1  # +Inf last
        self._slot_ids = [-1] * slots
        self._counts = [[0] * width for _ in range(slots)]

    def observe(self, time: float, value: float) -> None:
        slot_id = int(time / self.slot_s)
        position = slot_id % self.slots
        if self._slot_ids[position] != slot_id:
            self._counts[position] = [0] * (len(self.buckets) + 1)
            self._slot_ids[position] = slot_id
        counts = self._counts[position]
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
                return
        counts[-1] += 1

    def percentile(self, now: float, q: float) -> float:
        """Upper bound of the bucket holding quantile ``q`` (NaN when
        the window is empty, ``inf`` when it lands in the +Inf bucket)."""
        oldest = int(now / self.slot_s) - self.slots + 1
        merged = [0] * (len(self.buckets) + 1)
        for slot_id, counts in zip(self._slot_ids, self._counts):
            if slot_id >= oldest:
                for index, count in enumerate(counts):
                    merged[index] += count
        total = sum(merged)
        if total == 0:
            return float("nan")
        threshold = q * total
        cumulative = 0
        for index, count in enumerate(merged):
            cumulative += count
            if cumulative >= threshold and count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return float("inf")
        return float("inf")


#: Handoff-latency buckets mirror StandardInstruments' histogram.
HANDOFF_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0)
#: Detection-latency buckets cover the heartbeat-miss scale.
DETECTION_BUCKETS = (1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)


class RollingWindows:
    """Trace observer maintaining the live rolling-window aggregates.

    Attach with :meth:`repro.obs.trace.Tracer.add_observer`; every
    event updates the relevant window in O(1) and records the event id
    as the window's *last contributor* so an SLO breach can cite the
    offending event as its ``cause``.
    """

    def __init__(self, window_s: float = 300.0, slots: int = 60) -> None:
        self.window_s = window_s
        self.probe_rate = RollingRate(window_s, slots)
        self.link_probe_rates: dict[str, RollingRate] = {}
        self.violation_rate = RollingRate(window_s, slots)
        self.handoff_latency = RollingPercentile(
            HANDOFF_BUCKETS, window_s=window_s, slots=slots
        )
        self.detection_latency = RollingPercentile(
            DETECTION_BUCKETS, window_s=window_s, slots=slots
        )
        self.last_time = 0.0
        #: metric key -> id of the last event that fed it (SLO causes).
        self.last_event_id: dict[str, int] = {}

    def on_event(self, event) -> None:  # noqa: ANN001 - TraceEvent, untyped to avoid cycle
        kind = event.kind
        time = event.time
        if time > self.last_time:
            self.last_time = time
        if kind in ("probe.headroom", "probe.max_capacity"):
            self.probe_rate.add(time)
            self.last_event_id["probe_rate"] = event.id
            src = event.data.get("src")
            dst = event.data.get("dst")
            if src and dst:
                link = f"{src}->{dst}"
                per_link = self.link_probe_rates.get(link)
                if per_link is None:
                    per_link = RollingRate(
                        self.window_s, self.probe_rate.slots
                    )
                    self.link_probe_rates[link] = per_link
                per_link.add(time)
        elif kind == "violation.detected":
            self.violation_rate.add(time)
            self.last_event_id["violation_rate"] = event.id
        elif kind == "handoff.committed":
            self.handoff_latency.observe(
                time, event.data.get("latency_s") or 0.0
            )
            self.last_event_id["handoff_latency_p95"] = event.id
        elif kind == "node.confirmed_dead":
            self.detection_latency.observe(
                time, event.data.get("detection_latency_s", 0.0)
            )
            self.last_event_id["detection_latency_p95"] = event.id

    # -- scrape-side views -------------------------------------------------

    def value(self, metric: str, now: Optional[float] = None) -> float:
        """Current value of a named rolling metric (SLO rule targets)."""
        at = now if now is not None else self.last_time
        if metric == "probe_rate":
            return self.probe_rate.rate(at)
        if metric == "violation_rate":
            return self.violation_rate.rate(at)
        if metric == "handoff_latency_p95":
            return self.handoff_latency.percentile(at, 0.95)
        if metric == "detection_latency_p95":
            return self.detection_latency.percentile(at, 0.95)
        raise KeyError(f"unknown rolling metric {metric!r}")

    def gauge_samples(
        self, now: float
    ) -> list[tuple[str, tuple[tuple[str, str], ...], float]]:
        """``(name, labels, value)`` rows for the exposition renderer."""
        samples: list[tuple[str, tuple[tuple[str, str], ...], float]] = [
            (
                "bass_rolling_probe_rate_per_second",
                (("scope", "fleet"),),
                self.probe_rate.rate(now),
            ),
            (
                "bass_rolling_violation_rate_per_second",
                (),
                self.violation_rate.rate(now),
            ),
        ]
        for link in sorted(self.link_probe_rates):
            samples.append(
                (
                    "bass_rolling_probe_rate_per_second",
                    (("link", link),),
                    self.link_probe_rates[link].rate(now),
                )
            )
        p95 = self.handoff_latency.percentile(now, 0.95)
        if not math.isnan(p95):
            samples.append(
                ("bass_rolling_handoff_latency_p95_seconds", (), p95)
            )
        detection = self.detection_latency.percentile(now, 0.95)
        if not math.isnan(detection):
            samples.append(
                ("bass_rolling_detection_latency_p95_seconds", (), detection)
            )
        return samples
