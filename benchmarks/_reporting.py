"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures; the
series/rows it produces are printed and persisted under
``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def save_table(
    name: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    note: str = "",
) -> str:
    """Render an aligned text table, print it, and persist it."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in materialized))
        if materialized
        else len(headers[i])
        for i in range(len(headers))
    ]

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(list(headers)), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in materialized)
    if note:
        lines.append("")
        lines.append(f"note: {note}")
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def fmt(value: float, digits: int = 2) -> str:
    """Format a float compactly for table cells."""
    return f"{value:.{digits}f}"


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeated rounds
    would re-measure identical work — so every benchmark uses a single
    round and reports the scenario's wall time.
    """
    return benchmark.pedantic(
        func, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
