"""Migration-threshold tuning experiments: Figs 14(c)(d) and 16 (§6.3.3).

Two knobs govern the bandwidth controller: the link-utilization
threshold for migration and the headroom capacity maintained on links.
These sweeps reproduce the paper's findings:

* Fixed arrivals (Fig 14c/d): mid thresholds (50–65 %) balance
  premature migrations (25 % — restart cost paid for transient dips)
  against late ones (75–95 % — prolonged congestion).
* Exponential arrivals (Fig 16): bursts make early migration cheap
  relative to repeated congestion, so *lower* thresholds win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..apps.social import SocialNetworkApp
from ..apps.workload import ExponentialArrivals, FixedRate
from ..config import BassConfig
from ..mesh.topology import citylab_subset
from ..obs.trace import TracerBase
from ..runner import CellSpec, ResultCache, SweepSpec, run_sweep
from ..sim.rng import RngStreams
from .common import build_env, deploy_app, run_timeline


@dataclass(frozen=True)
class ThresholdCell:
    """Outcome of one (threshold, headroom) configuration."""

    heuristic: str
    threshold: float
    headroom: float
    upper_quartile_latency_s: float
    mean_latency_s: float
    p99_latency_s: float
    migrations: int


def _run_threshold_config(
    *,
    heuristic: str,
    threshold: float,
    headroom: float,
    workload,
    duration_s: float,
    seed: int,
) -> ThresholdCell:
    """One emulated-mesh run of the social network at 50 RPS nominal."""
    rng_streams = RngStreams(seed)
    topology = citylab_subset(
        with_traces=True,
        trace_duration_s=duration_s,
        rng=rng_streams.get("traces"),
    )
    env = build_env(
        topology, seed=seed, buffer_mbit=400.0, restart_seconds=8.0
    )
    app = SocialNetworkApp(annotate_rps=workload.mean_rps)
    config = BassConfig().with_migration(
        goodput_threshold=0.0,  # isolate the utilization knob (§6.3.3)
        link_utilization_threshold=threshold,
        headroom_fraction=headroom,
        cooldown_s=30.0,
    )
    scheduler = "bass-bfs" if heuristic == "bfs" else "bass-longest-path"
    handle = deploy_app(env, app, scheduler, config=config)
    rng = env.rng.get(f"thr-{heuristic}-{threshold}-{headroom}")
    rate_iter = workload.counts(duration_s)
    latencies: list[float] = []

    def tick(t: float) -> None:
        rate = next(rate_iter, workload.mean_rps)
        app.set_rps(rate)
        app.update_demands(handle.binding, t)
        latencies.extend(app.sample_latencies_s(handle.binding, 4, rng))

    run_timeline(env, duration_s, on_tick=tick)
    array = np.asarray(latencies)
    return ThresholdCell(
        heuristic=heuristic,
        threshold=threshold,
        headroom=headroom,
        upper_quartile_latency_s=float(np.percentile(array, 75)),
        mean_latency_s=float(array.mean()),
        p99_latency_s=float(np.percentile(array, 99)),
        migrations=len(handle.deployment.migrations),
    )


def _fig14cd_cell(
    *,
    heuristic: str,
    threshold: float,
    headroom: float,
    rps: float,
    duration_s: float,
    seed: int,
) -> ThresholdCell:
    """One fig 14c/d grid cell (module-level: sweep workers import it)."""
    return _run_threshold_config(
        heuristic=heuristic,
        threshold=threshold,
        headroom=headroom,
        workload=FixedRate(rps),
        duration_s=duration_s,
        seed=seed,
    )


def _fig16_cell(
    *,
    threshold: float,
    mean_rps: float,
    headroom: float,
    duration_s: float,
    seed: int,
) -> ThresholdCell:
    """One fig 16 cell; the workload rng derives from (seed, threshold)
    exactly as the original serial loop did."""
    workload = ExponentialArrivals(
        mean_rps, rng=np.random.default_rng(seed + int(threshold * 100))
    )
    return _run_threshold_config(
        heuristic="longest_path",
        threshold=threshold,
        headroom=headroom,
        workload=workload,
        duration_s=duration_s,
        seed=seed,
    )


def fig14cd_sweep_spec(
    *,
    heuristics: tuple[str, ...] = ("bfs", "longest_path"),
    thresholds: tuple[float, ...] = (0.25, 0.50, 0.65, 0.75, 0.95),
    headrooms: tuple[float, ...] = (0.10, 0.20, 0.30),
    rps: float = 50.0,
    duration_s: float = 600.0,
    seed: int = 144,
) -> SweepSpec:
    """The fig 14c/d grid as a sweep spec, cells in the canonical
    (heuristic, threshold, headroom) nested-loop order."""
    cells = tuple(
        CellSpec(
            fn="repro.experiments.thresholds:_fig14cd_cell",
            kwargs={
                "heuristic": heuristic,
                "threshold": threshold,
                "headroom": headroom,
                "rps": rps,
                "duration_s": duration_s,
            },
            label=f"{heuristic}/thr{threshold:g}/hr{headroom:g}",
            seed=seed,
        )
        for heuristic in heuristics
        for threshold in thresholds
        for headroom in headrooms
    )
    return SweepSpec(name="fig14cd", cells=cells)


def fig14cd_threshold_sweep(
    *,
    heuristics: tuple[str, ...] = ("bfs", "longest_path"),
    thresholds: tuple[float, ...] = (0.25, 0.50, 0.65, 0.75, 0.95),
    headrooms: tuple[float, ...] = (0.10, 0.20, 0.30),
    rps: float = 50.0,
    duration_s: float = 600.0,
    seed: int = 144,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    tracer: Optional[TracerBase] = None,
    backend: str = "pool",
    chunk_size: Optional[int] = None,
    steal: bool = True,
) -> list[ThresholdCell]:
    """Figs 14c/d: latency across the (threshold × headroom) grid,
    fixed request arrivals at 50 RPS.

    Cells run through the sweep runner: ``jobs`` fans them out over
    worker processes and ``cache`` memoizes completed cells, with
    output byte-identical to the serial loop either way.
    """
    spec = fig14cd_sweep_spec(
        heuristics=heuristics,
        thresholds=thresholds,
        headrooms=headrooms,
        rps=rps,
        duration_s=duration_s,
        seed=seed,
    )
    return run_sweep(
        spec,
        jobs=jobs,
        cache=cache,
        tracer=tracer,
        backend=backend,
        chunk_size=chunk_size,
        steal=steal,
    ).results


def fig16_sweep_spec(
    *,
    thresholds: tuple[float, ...] = (0.25, 0.50, 0.65, 0.75),
    mean_rps: float = 50.0,
    headroom: float = 0.20,
    duration_s: float = 600.0,
    seed: int = 16,
) -> SweepSpec:
    """Fig 16's threshold sweep as a sweep spec."""
    cells = tuple(
        CellSpec(
            fn="repro.experiments.thresholds:_fig16_cell",
            kwargs={
                "threshold": threshold,
                "mean_rps": mean_rps,
                "headroom": headroom,
                "duration_s": duration_s,
            },
            label=f"thr{threshold:g}",
            seed=seed,
        )
        for threshold in thresholds
    )
    return SweepSpec(name="fig16", cells=cells)


def fig16_exponential_thresholds(
    *,
    thresholds: tuple[float, ...] = (0.25, 0.50, 0.65, 0.75),
    mean_rps: float = 50.0,
    headroom: float = 0.20,
    duration_s: float = 600.0,
    seed: int = 16,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    tracer: Optional[TracerBase] = None,
    backend: str = "pool",
    chunk_size: Optional[int] = None,
    steal: bool = True,
) -> list[ThresholdCell]:
    """Fig 16: the same sweep under exponential (Poisson) arrivals,
    longest-path scheduling, headroom fixed at 20 %."""
    spec = fig16_sweep_spec(
        thresholds=thresholds,
        mean_rps=mean_rps,
        headroom=headroom,
        duration_s=duration_s,
        seed=seed,
    )
    return run_sweep(
        spec,
        jobs=jobs,
        cache=cache,
        tracer=tracer,
        backend=backend,
        chunk_size=chunk_size,
        steal=steal,
    ).results


def best_threshold(cells: list[ThresholdCell]) -> float:
    """The threshold whose best-headroom cell minimizes upper-quartile
    latency (how Fig 14b's inputs were chosen)."""
    by_threshold: dict[float, float] = {}
    for cell in cells:
        current = by_threshold.get(cell.threshold, float("inf"))
        by_threshold[cell.threshold] = min(
            current, cell.upper_quartile_latency_s
        )
    return min(by_threshold, key=lambda t: by_threshold[t])
