"""Figs 14(c)(d): end-to-end latency across the migration-threshold ×
headroom grid for both heuristics, fixed arrivals.

Paper: 25 % migrates prematurely, 75–95 % waits too long; 50–65 %
balances the two.  Our reproducible shape (see EXPERIMENTS.md): the
late extreme (95 %) has the worst tail because it sleeps through long
fades, and lower thresholds migrate more often.
"""

import numpy as np
import pytest

from repro.experiments.thresholds import fig14cd_threshold_sweep

from _reporting import fmt, run_once, save_table


@pytest.mark.benchmark(group="fig14cd")
def test_fig14cd_threshold_sweep(benchmark):
    cells = run_once(
        benchmark,
        fig14cd_threshold_sweep,
        heuristics=("bfs", "longest_path"),
        thresholds=(0.25, 0.50, 0.65, 0.75, 0.95),
        headrooms=(0.10, 0.20, 0.30),
        rps=70.0,
        duration_s=600.0,
    )
    save_table(
        "fig14cd_threshold_sweep",
        ["heuristic", "threshold", "headroom", "uq_latency_s", "p99_s",
         "migrations"],
        [
            [
                c.heuristic,
                c.threshold,
                c.headroom,
                fmt(c.upper_quartile_latency_s),
                fmt(c.p99_latency_s),
                c.migrations,
            ]
            for c in cells
        ],
    )
    assert len(cells) == 2 * 5 * 3
    assert all(np.isfinite(c.upper_quartile_latency_s) for c in cells)

    def best_p99(heuristic, threshold):
        return min(
            c.p99_latency_s
            for c in cells
            if c.heuristic == heuristic and c.threshold == threshold
        )

    def total_migrations(heuristic, threshold):
        return sum(
            c.migrations
            for c in cells
            if c.heuristic == heuristic and c.threshold == threshold
        )

    for heuristic in ("bfs", "longest_path"):
        # Waiting for 95% quota utilization sleeps through long fades:
        # its tail is at least as bad as the mid thresholds'.
        assert best_p99(heuristic, 0.95) >= min(
            best_p99(heuristic, 0.50), best_p99(heuristic, 0.65)
        )
        # Migration activity responds to the knob: some threshold
        # migrates more than the most conservative one.
        assert max(
            total_migrations(heuristic, t) for t in (0.25, 0.50, 0.65)
        ) >= total_migrations(heuristic, 0.95)
