"""Unit tests for the fluid link queues."""

import pytest

from repro.errors import SimulationError
from repro.net.queues import LinkQueue


class TestQueueDynamics:
    def test_no_backlog_when_underloaded(self):
        queue = LinkQueue()
        sample = queue.update(1.0, offered_mbps=5.0, capacity_mbps=10.0)
        assert sample.backlog_mbit == 0.0
        assert sample.delay_s == 0.0
        assert sample.loss_fraction == 0.0

    def test_backlog_grows_at_excess_rate(self):
        queue = LinkQueue(buffer_mbit=100.0)
        queue.update(1.0, offered_mbps=15.0, capacity_mbps=10.0)
        assert queue.backlog_mbit == pytest.approx(5.0)
        queue.update(1.0, offered_mbps=15.0, capacity_mbps=10.0)
        assert queue.backlog_mbit == pytest.approx(10.0)

    def test_backlog_drains_when_capacity_recovers(self):
        queue = LinkQueue(buffer_mbit=100.0)
        queue.update(1.0, offered_mbps=30.0, capacity_mbps=10.0)
        assert queue.backlog_mbit == pytest.approx(20.0)
        queue.update(1.0, offered_mbps=0.0, capacity_mbps=15.0)
        assert queue.backlog_mbit == pytest.approx(5.0)
        queue.update(1.0, offered_mbps=0.0, capacity_mbps=15.0)
        assert queue.backlog_mbit == 0.0

    def test_delay_is_backlog_over_capacity(self):
        queue = LinkQueue(buffer_mbit=100.0)
        queue.update(1.0, offered_mbps=20.0, capacity_mbps=10.0)
        assert queue.delay_s(10.0) == pytest.approx(1.0)
        assert queue.delay_s(5.0) == pytest.approx(2.0)

    def test_overflow_drops_and_caps_backlog(self):
        queue = LinkQueue(buffer_mbit=10.0)
        sample = queue.update(1.0, offered_mbps=50.0, capacity_mbps=10.0)
        assert sample.backlog_mbit == 10.0
        assert sample.loss_fraction > 0
        assert queue.dropped_mbit_total == pytest.approx(30.0)

    def test_loss_fraction_is_share_of_offered(self):
        queue = LinkQueue(buffer_mbit=10.0)
        sample = queue.update(1.0, offered_mbps=50.0, capacity_mbps=10.0)
        # 50 offered, 10 drained, 10 buffered -> 30 dropped.
        assert sample.loss_fraction == pytest.approx(30.0 / 50.0)

    def test_loss_zero_when_nothing_offered(self):
        queue = LinkQueue()
        sample = queue.update(1.0, offered_mbps=0.0, capacity_mbps=1.0)
        assert sample.loss_fraction == 0.0

    def test_dead_link_delay_bounded_by_nominal_drain(self):
        queue = LinkQueue(buffer_mbit=10.0)
        queue.update(1.0, offered_mbps=10.0, capacity_mbps=0.0)
        assert queue.delay_s(0.0) == pytest.approx(queue.backlog_mbit / 1.0)

    def test_reset(self):
        queue = LinkQueue()
        queue.update(1.0, offered_mbps=50.0, capacity_mbps=1.0)
        queue.reset()
        assert queue.backlog_mbit == 0.0
        assert queue.last_loss_fraction == 0.0

    def test_negative_dt_raises(self):
        with pytest.raises(SimulationError):
            LinkQueue().update(-1.0, 1.0, 1.0)

    def test_nonpositive_buffer_raises(self):
        with pytest.raises(SimulationError):
            LinkQueue(buffer_mbit=0.0)
