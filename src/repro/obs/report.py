"""Human-readable run reports reconstructed from a flight-recorder trace.

``bass-repro report <trace.jsonl>`` renders the causal story of a run:
where every component was placed, and — for every migration — the full
chain that led to it (headroom/goodput probe → violation → epoch plan →
selection/deflection → restart), plus summary statistics of probes,
violations, and restart costs.

The report is built purely from the JSONL trace, so it can be produced
long after the run, on another machine, from an operator's bug report.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..metrics.summary import p50, p95, p99, text_histogram
from .trace import TraceEvent, read_trace

__all__ = [
    "MigrationChain",
    "RecoveryChain",
    "cause_chain",
    "migration_chains",
    "recovery_chains",
    "render_report",
    "read_trace",
]


def cause_chain(
    by_id: dict[int, TraceEvent], event: TraceEvent
) -> list[TraceEvent]:
    """The event plus its transitive causes, effect-first.

    Broken references and cycles terminate the walk rather than raise:
    a report must degrade gracefully on a truncated trace file.
    """
    chain = [event]
    seen = {event.id}
    current = event
    while current.cause is not None:
        parent = by_id.get(current.cause)
        if parent is None or parent.id in seen:
            break
        chain.append(parent)
        seen.add(parent.id)
        current = parent
    return chain


@dataclass
class MigrationChain:
    """One migration and every causal ancestor the trace records."""

    selected: TraceEvent
    restart: Optional[TraceEvent] = None
    plan: Optional[TraceEvent] = None
    violation: Optional[TraceEvent] = None
    probe: Optional[TraceEvent] = None
    deflections: list[TraceEvent] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Probe → violation → plan → selection → restart, all present."""
        return None not in (
            self.probe, self.violation, self.plan, self.restart
        )


def migration_chains(events: Sequence[TraceEvent]) -> list[MigrationChain]:
    """Reconstruct every migration's cause chain from a trace."""
    by_id = {event.id: event for event in events}
    restarts_by_cause = {
        event.cause: event
        for event in events
        if event.kind == "restart" and event.cause is not None
    }
    deflections_by_cause: dict[int, list[TraceEvent]] = {}
    for event in events:
        if event.kind == "migration.deflected" and event.cause is not None:
            deflections_by_cause.setdefault(event.cause, []).append(event)

    chains = []
    for event in events:
        if event.kind != "migration.selected":
            continue
        chain = MigrationChain(selected=event)
        chain.restart = restarts_by_cause.get(event.id)
        for ancestor in cause_chain(by_id, event)[1:]:
            if ancestor.kind == "epoch.plan" and chain.plan is None:
                chain.plan = ancestor
                chain.deflections = deflections_by_cause.get(ancestor.id, [])
            elif (
                ancestor.kind == "violation.detected"
                and chain.violation is None
            ):
                chain.violation = ancestor
            elif ancestor.kind.startswith("probe.") and chain.probe is None:
                chain.probe = ancestor
        chains.append(chain)
    return chains


@dataclass
class RecoveryChain:
    """One crash recovery and every causal ancestor the trace records.

    The full chain is ``fault.injected → node.suspected →
    node.confirmed_dead → recovery.plan → restart`` (one restart per
    re-placed pod; ``recovery.failed`` entries record pods no surviving
    node could take).
    """

    plan: TraceEvent
    restarts: list[TraceEvent] = field(default_factory=list)
    failures: list[TraceEvent] = field(default_factory=list)
    deflections: list[TraceEvent] = field(default_factory=list)
    confirmed: Optional[TraceEvent] = None
    suspected: Optional[TraceEvent] = None
    fault: Optional[TraceEvent] = None

    @property
    def complete(self) -> bool:
        """Fault → suspicion → confirmation → plan → restart(s), all
        present and every lost pod re-placed."""
        return (
            None not in (self.fault, self.suspected, self.confirmed)
            and bool(self.restarts)
            and not self.failures
        )


def recovery_chains(events: Sequence[TraceEvent]) -> list[RecoveryChain]:
    """Reconstruct every crash recovery's cause chain from a trace."""
    by_id = {event.id: event for event in events}
    by_cause: dict[str, dict[int, list[TraceEvent]]] = {}
    for event in events:
        if event.cause is not None:
            by_cause.setdefault(event.kind, {}).setdefault(
                event.cause, []
            ).append(event)

    chains = []
    for event in events:
        if event.kind != "recovery.plan":
            continue
        chain = RecoveryChain(plan=event)
        chain.restarts = by_cause.get("restart", {}).get(event.id, [])
        chain.failures = by_cause.get("recovery.failed", {}).get(event.id, [])
        chain.deflections = by_cause.get("recovery.deflected", {}).get(
            event.id, []
        )
        for ancestor in cause_chain(by_id, event)[1:]:
            if (
                ancestor.kind == "node.confirmed_dead"
                and chain.confirmed is None
            ):
                chain.confirmed = ancestor
            elif ancestor.kind == "node.suspected" and chain.suspected is None:
                chain.suspected = ancestor
            elif ancestor.kind == "fault.injected" and chain.fault is None:
                chain.fault = ancestor
        chains.append(chain)
    return chains


def _describe(event: TraceEvent) -> str:
    """One-line description of an event for the report body."""
    data = event.data
    prefix = f"{event.kind} @{event.time:.1f}s"
    if event.kind == "probe.headroom":
        return (
            f"{prefix}: link {data.get('src')}->{data.get('dst')} had "
            f"{data.get('available_mbps', float('nan')):.2f} of "
            f"{data.get('capacity_mbps', float('nan')):.2f} Mbps free "
            f"(needed {data.get('required_mbps', float('nan')):.2f}, "
            f"ok={data.get('headroom_ok')})"
        )
    if event.kind == "probe.max_capacity":
        return (
            f"{prefix}: full probe of {data.get('src')}->{data.get('dst')} "
            f"measured {data.get('capacity_mbps', float('nan')):.2f} Mbps"
        )
    if event.kind == "violation.detected":
        return (
            f"{prefix}: edge {data.get('component')}->"
            f"{data.get('dependency')} goodput="
            f"{data.get('goodput', float('nan')):.2f} utilization="
            f"{data.get('utilization', float('nan')):.2f} "
            f"severity={data.get('severity', float('nan')):.2f}"
        )
    if event.kind == "epoch.plan":
        candidates = ", ".join(data.get("candidates", [])) or "(none)"
        return (
            f"{prefix}: epoch {event.epoch} planned candidates "
            f"[{candidates}] from {data.get('violations', 0)} violation(s)"
        )
    if event.kind == "migration.selected":
        return (
            f"{prefix}: move {data.get('component')} "
            f"{data.get('from')} -> {data.get('to')} "
            f"(restart {data.get('restart_s', float('nan')):.1f}s)"
        )
    if event.kind == "migration.deflected":
        granted = data.get("granted") or "nowhere (deferred)"
        return (
            f"{prefix}: {data.get('component')} deflected off "
            f"{data.get('preferred')} -> {granted} by another tenant's claim"
        )
    if event.kind == "restart":
        return (
            f"{prefix}: {data.get('component')} restarting on "
            f"{data.get('to')} for {data.get('restart_s', float('nan')):.1f}s"
        )
    if event.kind == "fault.injected":
        return (
            f"{prefix}: {data.get('fault')} hit {data.get('target')} "
            f"({data.get('flows_removed', 0)} flow(s) torn down, "
            f"{data.get('flows_rerouted', 0)} rerouted)"
        )
    if event.kind == "fault.cleared":
        return (
            f"{prefix}: {data.get('fault')} on {data.get('target')} cleared"
        )
    if event.kind == "node.suspected":
        return (
            f"{prefix}: {data.get('node')} suspected after "
            f"{data.get('missed_beats')} missed heartbeat(s)"
        )
    if event.kind == "node.confirmed_dead":
        return (
            f"{prefix}: {data.get('node')} confirmed dead "
            f"(detection latency "
            f"{data.get('detection_latency_s', float('nan')):.1f}s)"
        )
    if event.kind == "node.recovered":
        return f"{prefix}: {data.get('node')} heartbeats resumed"
    if event.kind == "recovery.plan":
        pods = ", ".join(data.get("pods", [])) or "(none)"
        return (
            f"{prefix}: re-place [{pods}] of app {event.app or '-'} "
            f"lost on {data.get('node')}"
        )
    if event.kind == "recovery.deflected":
        granted = data.get("granted") or "nowhere (stranded)"
        return (
            f"{prefix}: {data.get('component')} deflected off "
            f"{data.get('preferred')} -> {granted} by another tenant's claim"
        )
    if event.kind == "recovery.failed":
        return (
            f"{prefix}: no surviving node could take "
            f"{data.get('component')} from {data.get('node')}"
        )
    if event.kind == "region.assigned":
        previous = data.get("previous")
        verb = f"re-homed from {previous}" if previous else "homed"
        return (
            f"{prefix}: tenant {event.app or '-'} {verb} "
            f"in region {data.get('region')}"
        )
    if event.kind == "claim.conflict":
        return (
            f"{prefix}: {data.get('loser_region')}/{event.app or '-'} lost "
            f"node {data.get('node')} to {data.get('winner_region')}/"
            f"{data.get('winner_app')} "
            f"(severity {data.get('loser_severity', float('nan')):.2f} vs "
            f"{data.get('winner_severity', float('nan')):.2f})"
        )
    if event.kind == "handoff.requested":
        return (
            f"{prefix}: {data.get('component')} of {event.app or '-'} "
            f"requested {data.get('source_region')} -> "
            f"{data.get('target_region')} "
            f"({data.get('source_node')} -> {data.get('target_node')})"
        )
    if event.kind == "handoff.denied":
        return (
            f"{prefix}: handoff of {data.get('component')} denied — "
            f"node {data.get('node')} held by {data.get('holder_app')} "
            f"({data.get('holder_region')})"
        )
    if event.kind == "handoff.committed":
        latency = data.get("latency_s")
        latency_text = (
            f" after {latency:.1f}s" if latency is not None else ""
        )
        return (
            f"{prefix}: {data.get('component')} handed off "
            f"{data.get('source_region')} -> {data.get('target_region')} "
            f"onto {data.get('node')}{latency_text}"
        )
    if event.kind == "handoff.aborted":
        return (
            f"{prefix}: handoff of {data.get('component')} onto "
            f"{data.get('target_node')} aborted — {data.get('note')}"
        )
    if event.kind == "slo.breach":
        return (
            f"{prefix}: SLO {data.get('rule')} breached — "
            f"{data.get('metric')}="
            f"{data.get('observed', float('nan')):.4f} over ceiling "
            f"{data.get('max_value', float('nan')):.4f}"
        )
    if event.kind == "status.published":
        return (
            f"{prefix}: status.json revision {data.get('revision')} "
            f"published (epoch {event.epoch})"
        )
    extras = " ".join(f"{k}={v}" for k, v in sorted(data.items()))
    return f"{prefix}: {extras}" if extras else prefix


def render_report(events: Sequence[TraceEvent]) -> str:
    """Render the full run report for a trace."""
    if not events:
        return "(empty trace)"
    lines: list[str] = []
    counts = TallyCounter(event.kind for event in events)
    span = max(event.time for event in events)

    lines.append(f"flight recorder report — {len(events)} events, "
                 f"{span:.1f}s of simulated time")
    lines.append("")
    lines.append("event counts:")
    for kind, count in sorted(counts.items()):
        lines.append(f"  {kind:<26s} {count}")

    placements = [e for e in events if e.kind == "placement.bound"]
    if placements:
        lines.append("")
        lines.append("placements:")
        for event in placements:
            lines.append(
                f"  @{event.time:.1f}s {event.app or '-'}: "
                f"{event.data.get('pod')} -> {event.data.get('node')}"
            )

    chains = migration_chains(events)
    lines.append("")
    lines.append(f"migrations: {len(chains)}")
    for index, chain in enumerate(chains, 1):
        app = chain.selected.app or "-"
        lines.append(f"  [{index}] app={app} {_describe(chain.selected)}")
        indent = "      "
        for label, link in (
            ("restart", chain.restart),
            ("plan", chain.plan),
            ("violation", chain.violation),
            ("probe", chain.probe),
        ):
            if link is not None:
                lines.append(f"{indent}{label:<10s} {_describe(link)}")
            else:
                lines.append(f"{indent}{label:<10s} (missing from trace)")
        for deflection in chain.deflections:
            lines.append(f"{indent}deflected  {_describe(deflection)}")
        if not chain.complete:
            lines.append(f"{indent}!! incomplete cause chain")

    recoveries = recovery_chains(events)
    if recoveries:
        lines.append("")
        lines.append(f"recoveries: {len(recoveries)}")
        for index, chain in enumerate(recoveries, 1):
            app = chain.plan.app or "-"
            lines.append(f"  [{index}] app={app} {_describe(chain.plan)}")
            indent = "      "
            for label, link in (
                ("confirmed", chain.confirmed),
                ("suspected", chain.suspected),
                ("fault", chain.fault),
            ):
                if link is not None:
                    lines.append(f"{indent}{label:<10s} {_describe(link)}")
                else:
                    lines.append(f"{indent}{label:<10s} (missing from trace)")
            for restart in chain.restarts:
                lines.append(f"{indent}restart    {_describe(restart)}")
            for failure in chain.failures:
                lines.append(f"{indent}failed     {_describe(failure)}")
            for deflection in chain.deflections:
                lines.append(f"{indent}deflected  {_describe(deflection)}")
            if not chain.complete:
                lines.append(f"{indent}!! incomplete cause chain")

    breaches = [e for e in events if e.kind == "slo.breach"]
    if breaches:
        by_id = {event.id: event for event in events}
        lines.append("")
        lines.append(f"slo breaches: {len(breaches)}")
        for index, breach in enumerate(breaches, 1):
            lines.append(f"  [{index}] {_describe(breach)}")
            for ancestor in cause_chain(by_id, breach)[1:]:
                lines.append(f"      caused-by  {_describe(ancestor)}")

    deflections = [e for e in events if e.kind == "migration.deflected"]
    restarts = [e for e in events if e.kind == "restart"]
    restart_costs = [e.data.get("restart_s", 0.0) for e in restarts]
    # Clamp: live available bandwidth can exceed a stale cached capacity
    # (e.g. right after a throttle lifts), which would read as < 0.
    utilizations = [
        min(1.0, max(0.0, 1.0 - e.data["available_mbps"] / e.data["capacity_mbps"]))
        for e in events
        if e.kind == "probe.headroom"
        and e.data.get("capacity_mbps", 0.0) > 0
    ]

    lines.append("")
    lines.append("statistics:")
    lines.append(
        f"  probes: {counts.get('probe.max_capacity', 0)} full, "
        f"{counts.get('probe.headroom', 0)} headroom"
    )
    lines.append(
        f"  violations: {counts.get('violation.detected', 0)} detected, "
        f"{counts.get('violation.cleared', 0)} cleared"
    )
    lines.append(
        f"  migrations: {len(chains)} selected, {len(restarts)} restarted, "
        f"{len(deflections)} deflected"
    )
    if counts.get("fault.injected"):
        lines.append(
            f"  faults: {counts.get('fault.injected', 0)} injected, "
            f"{counts.get('fault.cleared', 0)} cleared; "
            f"{counts.get('node.confirmed_dead', 0)} node(s) confirmed dead"
        )
        recovered = sum(len(c.restarts) for c in recoveries)
        stranded = sum(len(c.failures) for c in recoveries)
        recovery_deflections = sum(len(c.deflections) for c in recoveries)
        lines.append(
            f"  recoveries: {recovered} pod(s) re-placed, "
            f"{stranded} stranded, {recovery_deflections} deflected"
        )
        latencies = [
            e.data.get("detection_latency_s", 0.0)
            for e in events
            if e.kind == "node.confirmed_dead"
        ]
        if latencies:
            lines.append(
                f"  detection latency seconds: p50={p50(latencies):.2f} "
                f"p95={p95(latencies):.2f} p99={p99(latencies):.2f}"
            )
    if counts.get("handoff.requested"):
        lines.append(
            f"  handoffs: {counts.get('handoff.requested', 0)} requested, "
            f"{counts.get('handoff.committed', 0)} committed, "
            f"{counts.get('handoff.aborted', 0)} aborted, "
            f"{counts.get('handoff.denied', 0)} denied"
        )
        handoff_latencies = [
            e.data["latency_s"]
            for e in events
            if e.kind == "handoff.committed"
            and e.data.get("latency_s") is not None
        ]
        if handoff_latencies:
            lines.append(
                f"  handoff latency seconds: "
                f"p50={p50(handoff_latencies):.2f} "
                f"p95={p95(handoff_latencies):.2f} "
                f"p99={p99(handoff_latencies):.2f}"
            )
    arbiter_conflicts = (
        len(deflections)
        + counts.get("recovery.deflected", 0)
        + counts.get("claim.conflict", 0)
        + counts.get("handoff.denied", 0)
    )
    if arbiter_conflicts and (
        counts.get("claim.conflict") or counts.get("handoff.denied")
    ):
        lines.append(f"  arbiter conflicts: {arbiter_conflicts} total")
    if restart_costs:
        lines.append(
            f"  restart seconds: p50={p50(restart_costs):.2f} "
            f"p95={p95(restart_costs):.2f} p99={p99(restart_costs):.2f}"
        )
        lines.append("  restart-cost histogram:")
        lines.extend(
            "    " + row
            for row in text_histogram(restart_costs, bins=6).splitlines()
        )
    if utilizations:
        lines.append("  probed link-utilization histogram:")
        lines.extend(
            "    " + row
            for row in text_histogram(utilizations, bins=8).splitlines()
        )

    profiles = [e for e in events if e.kind == "profile.tick_phases"]
    if profiles:
        last = profiles[-1]
        ticks = last.data.get("ticks", 0)
        lines.append("")
        lines.append(
            f"tick profile @{last.time:.1f}s — {ticks} emulator tick(s), "
            f"wall clock:"
        )
        for phase, seconds in sorted(
            (last.data.get("phase_seconds") or {}).items()
        ):
            per_ms = seconds / ticks * 1000.0 if ticks else 0.0
            lines.append(
                f"  {phase:<14s} {seconds:9.3f}s total "
                f"{per_ms:8.3f} ms/tick"
            )
        solver = last.data.get("solver") or {}
        if solver:
            lines.append(
                f"  solver: {solver.get('full_solves', 0)} full solve(s), "
                f"{solver.get('partial_solves', 0)} partial, "
                f"{solver.get('components_resolved', 0)} component(s) "
                f"re-solved of {solver.get('components', 0)}"
            )

    sweep_dones = [e for e in events if e.kind == "sweep.done"]
    if sweep_dones:
        fabrics = {
            e.data.get("sweep"): e
            for e in events
            if e.kind == "sweep.fabric"
        }
        lines.append("")
        lines.append(f"sweeps: {len(sweep_dones)}")
        for done in sweep_dones:
            name = done.data.get("sweep", "-")
            lines.append(
                f"  {name}: backend={done.data.get('backend', 'pool')} "
                f"{done.data.get('cells', 0)} cell(s) — "
                f"{done.data.get('executed', 0)} executed, "
                f"{done.data.get('cached', 0)} cached, "
                f"{done.data.get('failed', 0)} failed; "
                f"{done.data.get('cells_per_second', 0.0):.2f} cells/s, "
                f"cache hit rate "
                f"{done.data.get('cache_hit_rate', 0.0):.0%}"
            )
            fabric = fabrics.get(name)
            if fabric is None:
                continue
            lines.append(
                f"    fabric: {fabric.data.get('jobs', 0)} worker(s), "
                f"{fabric.data.get('chunks', 0)} chunk(s) of "
                f"{fabric.data.get('chunk_size', 0)}, "
                f"{fabric.data.get('steals', 0)} steal(s), "
                f"peak queue depth "
                f"{fabric.data.get('max_queue_depth', 0)}, "
                f"{fabric.data.get('worker_crashes', 0)} crash(es) "
                f"survived"
            )
            for report in fabric.data.get("workers") or ():
                crashed = " !! crashed" if report.get("crashed") else ""
                lines.append(
                    f"    worker {report.get('worker', '?')}: "
                    f"{report.get('cells', 0)} cell(s), "
                    f"busy {report.get('busy_fraction', 0.0):.0%}, "
                    f"cache hit rate "
                    f"{report.get('cache_hit_rate', 0.0):.0%}{crashed}"
                )
    return "\n".join(lines)
