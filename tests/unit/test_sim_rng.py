"""Unit tests for seeded RNG streams."""

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(seed=7).get("arrivals").random(5)
        b = RngStreams(seed=7).get("arrivals").random(5)
        assert (a == b).all()

    def test_different_names_are_independent(self):
        streams = RngStreams(seed=7)
        a = streams.get("arrivals").random(5)
        b = streams.get("traces").random(5)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngStreams(seed=1).get("x").random(5)
        b = RngStreams(seed=2).get("x").random(5)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        streams = RngStreams(seed=0)
        assert streams.get("a") is streams.get("a")

    def test_spawn_derives_independent_family(self):
        parent = RngStreams(seed=3)
        child = parent.spawn("trial-1")
        assert child.seed != parent.seed
        a = child.get("x").random(3)
        b = parent.get("x").random(3)
        assert not (a == b).all()

    def test_spawn_is_deterministic(self):
        a = RngStreams(seed=3).spawn("trial-1").get("x").random(3)
        b = RngStreams(seed=3).spawn("trial-1").get("x").random(3)
        assert (a == b).all()

    def test_seed_property(self):
        assert RngStreams(seed=42).seed == 42
