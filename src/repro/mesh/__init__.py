"""Wireless mesh network substrate.

Models the physical layer of a community mesh: heterogeneous compute
nodes, wireless links with time-varying capacity driven by bandwidth
traces, and decentralized shortest-path routing.  The 5-node CityLab
subset used in the paper's emulated-mesh evaluation (§6.3, Fig 15a) is
available from :func:`repro.mesh.topology.citylab_subset`.
"""

from .link import Link, LinkId
from .node import MeshNode
from .routing import Router
from .topology import MeshTopology, citylab_subset, line_topology, star_topology
from .tracegen import (
    ar1_trace,
    citylab_stable_link_trace,
    citylab_variable_link_trace,
    step_trace,
    trace_with_fades,
)
from .traces import BandwidthTrace

__all__ = [
    "BandwidthTrace",
    "Link",
    "LinkId",
    "MeshNode",
    "MeshTopology",
    "Router",
    "ar1_trace",
    "citylab_stable_link_trace",
    "citylab_subset",
    "citylab_variable_link_trace",
    "line_topology",
    "star_topology",
    "step_trace",
    "trace_with_fades",
]
