"""The BASS bandwidth controller (§4.3).

Periodically (every headroom-probe interval) the controller:

1. runs *headroom probes* on the links the application's inter-node
   edges use; a headroom violation on a link whose cached capacity is
   stale escalates to a *max-capacity probe* of that link (Fig 8's
   "noticing a drop in the headroom capacity triggers a full probe");
2. collects goodput/headroom *violations* on every inter-node edge;
3. applies a *cooldown* — a component must stay in violation for a
   configured period before it may move, so transient dips don't cause
   migrations whose restart cost would never amortize;
4. runs Algorithm 3 to pick a cascade-free candidate set, selects a
   target node for each, and instructs the orchestrator to migrate.

Each evaluation is recorded as a :class:`ControllerIteration`, from
which Table 1 (candidates vs actually-migrated per iteration) and the
migration dots on Figs 12/13 are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..cluster.orchestrator import Orchestrator
from ..config import BassConfig
from ..errors import MigrationError, RoutingError
from ..net.netem import NetworkEmulator
from ..obs.trace import TracerBase, resolve_tracer
from .binding import DeploymentBinding
from .migration import MigrationPlanner, Violation
from .netmonitor import NetMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .controlplane import FleetArbiter
    from .regions import RegionController


@dataclass
class ControllerIteration:
    """Record of one controller evaluation (one row of Table 1)."""

    time: float
    violations: list[Violation] = field(default_factory=list)
    components_over_quota: int = 0
    candidates: list[str] = field(default_factory=list)
    migrated: list[str] = field(default_factory=list)
    full_probes_triggered: int = 0


class BandwidthController:
    """Migration decision loop for one deployed application.

    Args:
        app: application name.
        orchestrator: executes the migrations.
        binding: deployment ↔ network synchronization and goodput source.
        monitor: net-monitor for probing and capacity caching.
        config: thresholds, headroom, intervals, cooldown.
        tracer: flight recorder for decision events; defaults to the
            process default (a no-op unless ``--trace`` installed one).
    """

    def __init__(
        self,
        app: str,
        orchestrator: Orchestrator,
        binding: DeploymentBinding,
        monitor: NetMonitor,
        config: Optional[BassConfig] = None,
        *,
        tracer: Optional[TracerBase] = None,
    ) -> None:
        self.app = app
        self.orchestrator = orchestrator
        self.binding = binding
        self.monitor = monitor
        self.tracer = resolve_tracer(tracer)
        self.config = (config if config is not None else BassConfig()).validate()
        self.netem: NetworkEmulator = monitor.netem
        self.planner = MigrationPlanner(
            binding.dag,
            goodput_threshold=self.config.migration.goodput_threshold,
            link_utilization_threshold=(
                self.config.migration.link_utilization_threshold
            ),
            headroom_fraction=self.config.migration.headroom_fraction,
            improvement_margin=self.config.migration.improvement_margin,
        )
        self.iterations: list[ControllerIteration] = []
        self._violating_since: dict[str, float] = {}
        self._last_migrated_at: dict[str, float] = {}
        #: Minimum residency before the same component may move again —
        #: a guard against ping-pong under sustained congestion.  The
        #: default sizes it so the post-restart state is observed at
        #: least once; configs may raise it for slow-amortizing apps.
        if self.config.migration.min_residency_s is not None:
            self.min_residency_s = self.config.migration.min_residency_s
        else:
            self.min_residency_s = (
                self.config.probe.headroom_interval_s
                + self.config.migration.restart_seconds
            )
        self._task = None
        self._pending: Optional[ControllerIteration] = None
        self._pending_violations: list[Violation] = []
        self._epoch_seq = 0
        self._pending_plan_event: Optional[int] = None
        #: Region this tenant is homed in (set by a regionalized control
        #: plane).  When present, target selection is restricted to the
        #: region's nodes and out-of-region escapes become handoff
        #: requests brokered by the fleet arbiter.
        self.region: Optional["RegionController"] = None

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic evaluation on the engine."""
        if self._task is None:
            self._task = self.netem.engine.every(
                self.config.probe.headroom_interval_s, self.evaluate
            )

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    # -- one evaluation -----------------------------------------------------------
    #
    # An evaluation runs in three phases so the multi-tenant control
    # plane can interleave them across applications: ``observe`` (flow
    # sync + probing, sharing a fleet-wide probed-link set), ``plan``
    # (violation detection and candidate selection), and ``act``
    # (migration, gated by the fleet arbiter).  ``evaluate`` chains the
    # three, which is the standalone single-app behaviour.

    def evaluate(self) -> ControllerIteration:
        """Run one monitoring/migration cycle; returns its record."""
        self.observe()
        self.plan()
        return self.act()

    def observe(
        self, shared_probed: Optional[set[tuple[str, str]]] = None
    ) -> ControllerIteration:
        """Phase 1: refresh flows and probe the app's links.

        Args:
            shared_probed: fleet-wide set of links already probed this
                epoch; links found there are skipped, and links probed
                here are added, so co-tenants never duplicate a probe
                within one epoch.  Defaults to a private (per-call) set.
        """
        now = self.netem.now
        iteration = ControllerIteration(time=now)
        self._pending = iteration
        self._pending_violations = []
        self._pending_plan_event = None
        self._epoch_seq += 1
        if self.tracer.enabled:
            # Probes fired below are attributed to this tenant's epoch.
            self.tracer.set_context(app=self.app, epoch=self._epoch_seq)
        # Refresh edge flows first: demands depend on component
        # availability (restart windows), which only this loop observes.
        self.binding.sync_flows()
        iteration.full_probes_triggered = self._probe_application_links(
            shared_probed
        )
        return iteration

    def plan(self) -> float:
        """Phase 2: detect violations and select migration candidates.

        Returns:
            The maximum violation severity (0 when in spec), which the
            fleet arbiter uses to order tenants within an epoch.
        """
        iteration = self._require_pending()
        if self.tracer.enabled:
            self.tracer.set_context(app=self.app, epoch=self._epoch_seq)
        if self.config.migrations_enabled:
            deployment = self.orchestrator.deployment(self.app)
            violations = self.planner.detect_violations(
                deployment,
                self.netem,
                goodput_of=self.binding.goodput,
                achieved_mbps_of=self.binding.achieved_mbps,
            )
            iteration.violations = violations
            over_quota = {v.component for v in violations} | {
                v.dependency for v in violations
            }
            iteration.components_over_quota = len(over_quota)
            iteration.candidates = self.planner.select_candidates(violations)
            self._update_cooldowns(over_quota, iteration.time)
            self._pending_violations = violations
            if self.tracer.enabled and violations:
                self._trace_plan(iteration, violations, deployment)
        return max(
            (v.severity for v in self._pending_violations), default=0.0
        )

    def _trace_plan(
        self,
        iteration: ControllerIteration,
        violations: list[Violation],
        deployment,
    ) -> None:
        """Record each violation (cause: the probe that measured the
        edge's path) and the epoch plan (cause: the worst violation)."""
        worst_event = None
        worst_severity = -1.0
        for violation in violations:
            event_id = self.tracer.emit(
                "violation.detected",
                iteration.time,
                cause=self._probe_cause(violation, deployment),
                component=violation.component,
                dependency=violation.dependency,
                goodput=violation.goodput,
                utilization=violation.utilization,
                available_mbps=violation.available_mbps,
                headroom_mbps=violation.headroom_mbps,
                severity=violation.severity,
            )
            if violation.severity > worst_severity:
                worst_severity = violation.severity
                worst_event = event_id
        self._pending_plan_event = self.tracer.emit(
            "epoch.plan",
            iteration.time,
            cause=worst_event,
            candidates=list(iteration.candidates),
            violations=len(violations),
            components_over_quota=iteration.components_over_quota,
            max_severity=worst_severity,
        )

    def _probe_cause(self, violation: Violation, deployment) -> Optional[int]:
        """The probe event that measured the violating edge's path."""
        src_node = deployment.node_of(violation.component)
        dst_node = deployment.node_of(violation.dependency)
        for a, b in self.monitor.links_of_path(src_node, dst_node):
            event_id = self.monitor.probe_event_id(a, b)
            if event_id is not None:
                return event_id
        return None

    def act(self, arbiter: Optional["FleetArbiter"] = None) -> ControllerIteration:
        """Phase 3: migrate the planned candidates and record the epoch.

        Args:
            arbiter: fleet arbiter; when given, nodes claimed by *other*
                applications this epoch are excluded from target
                selection and successful migrations claim their target.
        """
        iteration = self._require_pending()
        now = iteration.time
        deployment = self.orchestrator.deployment(self.app)
        if self.tracer.enabled:
            self.tracer.set_context(app=self.app, epoch=self._epoch_seq)
        if self.config.migrations_enabled:
            violations = self._pending_violations
            budget = self.config.migration.max_per_iteration
            for component in iteration.candidates:
                if len(iteration.migrated) >= budget:
                    break
                if self._try_migrate(component, deployment, now, arbiter):
                    iteration.migrated.append(component)
                    continue
                # The selected endpoint cannot move usefully (no target
                # improves its edges, or it just moved).  Fall back to a
                # violating partner — still migrating only one end of
                # the pair, which is Algorithm 3's invariant.
                for partner in self._violating_partners(
                    component, violations
                ):
                    if partner in iteration.migrated:
                        continue
                    if self._try_migrate(partner, deployment, now, arbiter):
                        iteration.migrated.append(partner)
                        break
            if iteration.migrated:
                self.binding.sync_flows()
        self.iterations.append(iteration)
        self._pending = None
        self._pending_violations = []
        self._pending_plan_event = None
        if self.tracer.enabled:
            self.tracer.set_context(app=None, epoch=None)
        return iteration

    # -- internals ----------------------------------------------------------------

    def _require_pending(self) -> ControllerIteration:
        if self._pending is None:
            raise MigrationError(
                f"controller for {self.app!r}: observe() must run before "
                "plan()/act()"
            )
        return self._pending

    def _probe_application_links(
        self, shared_probed: Optional[set[tuple[str, str]]] = None
    ) -> int:
        """Headroom-probe links under the app's edges; escalate to full
        probes when headroom is violated (capacity may have changed)."""
        full_probes = 0
        deployment = self.orchestrator.deployment(self.app)
        probed = shared_probed if shared_probed is not None else set()
        for src, dst, _ in self.binding.inter_node_edges():
            src_node = deployment.node_of(src)
            dst_node = deployment.node_of(dst)
            for a, b in self.monitor.links_of_path(src_node, dst_node):
                if (a, b) in probed:
                    continue
                probed.add((a, b))
                cached = self.monitor.cached_capacity(a, b)
                headroom = cached * self.config.migration.headroom_fraction
                result = self.monitor.headroom_probe(a, b, headroom)
                if not result.headroom_ok and self.monitor.full_probe_allowed(
                    a, b
                ):
                    self.monitor.full_probe(a, b)
                    full_probes += 1
        return full_probes

    def _update_cooldowns(self, violating: set[str], now: float) -> None:
        """Track how long each component has been continuously violating."""
        # Sorted so the dict's insertion order (and with it the order of
        # later violation.cleared trace events) is hash-seed independent.
        for component in sorted(violating):
            self._violating_since.setdefault(component, now)
        for component in list(self._violating_since):
            if component not in violating:
                since = self._violating_since.pop(component)
                if self.tracer.enabled:
                    self.tracer.emit(
                        "violation.cleared",
                        now,
                        component=component,
                        duration_s=now - since,
                    )

    def _cooldown_elapsed(self, component: str, now: float) -> bool:
        since = self._violating_since.get(component)
        if since is None:
            # A pruned-in candidate whose own edges were fine; treat its
            # detection time as now (cooldown starts fresh).
            self._violating_since[component] = now
            since = now
        return now - since >= self.config.migration.cooldown_s

    def _violating_partners(
        self, component: str, violations: list[Violation]
    ) -> list[str]:
        """The other endpoints of this component's violating edges."""
        partners: list[str] = []
        for violation in violations:
            if violation.component == component:
                partners.append(violation.dependency)
            elif violation.dependency == component:
                partners.append(violation.component)
        return partners

    def _try_migrate(
        self,
        component: str,
        deployment,
        now: float,
        arbiter: Optional["FleetArbiter"] = None,
    ) -> bool:
        """All per-component gates, then the migration itself."""
        if not self._cooldown_elapsed(component, now):
            return False
        if not deployment.is_available(component, now):
            return False  # already mid-restart
        last = self._last_migrated_at.get(component)
        if last is not None and now - last < self.min_residency_s:
            return False
        if self._migrate_one(component, deployment, arbiter):
            self._last_migrated_at[component] = now
            self._violating_since.pop(component, None)
            return True
        return False

    def _migrate_one(
        self,
        component: str,
        deployment,
        arbiter: Optional["FleetArbiter"] = None,
    ) -> bool:
        """Pick a target and migrate; False when no suitable node exists."""
        spec = self.binding.dag.component(component)
        if spec.pinned_node is not None:
            return False  # pinned components (clients) never move
        claimed = (
            arbiter.nodes_claimed_by_others(self.app)
            if arbiter is not None
            else set()
        )
        # Crashed nodes are never migration targets (empty set unless a
        # fault plan is active, so the healthy path is unchanged).
        down = self.netem.topology.down_nodes
        allow = self.region.nodes if self.region is not None else None
        target = self.planner.select_target(
            component,
            deployment,
            self.orchestrator.cluster,
            self.netem,
            exclude=(claimed | down) or None,
            allow=allow,
            achieved_mbps_of=self.binding.achieved_mbps,
            tracer=self.tracer,
            trace_cause=self._pending_plan_event,
        )
        if claimed:
            # Another tenant already claimed node(s) this epoch: record a
            # conflict whenever arbitration changed this app's choice.
            preferred = self.planner.select_target(
                component,
                deployment,
                self.orchestrator.cluster,
                self.netem,
                exclude=down or None,
                allow=allow,
                achieved_mbps_of=self.binding.achieved_mbps,
            )
            if preferred is not None and preferred != target:
                arbiter.record_conflict(
                    self.netem.now, self.app, component, preferred, target
                )
                if self.tracer.enabled:
                    self.tracer.emit(
                        "migration.deflected",
                        self.netem.now,
                        cause=self._pending_plan_event,
                        component=component,
                        preferred=preferred,
                        granted=target,
                    )
        if target is None:
            if self.region is not None:
                self._maybe_request_handoff(
                    component, deployment, claimed, down
                )
            return False
        restart = self.migration_restart_s(component, target)
        selected_event = None
        if self.tracer.enabled:
            selected_event = self.tracer.emit(
                "migration.selected",
                self.netem.now,
                cause=self._pending_plan_event,
                component=component,
                **{"from": deployment.node_of(component)},
                to=target,
                restart_s=restart,
            )
        try:
            self.orchestrator.migrate(
                self.app,
                component,
                target,
                reason="bandwidth violation",
                restart_override_s=restart,
                trace_cause=selected_event,
            )
        except MigrationError as error:
            if self.tracer.enabled:
                self.tracer.emit(
                    "migration.aborted",
                    self.netem.now,
                    cause=selected_event,
                    component=component,
                    to=target,
                    error=str(error),
                )
            return False
        if arbiter is not None:
            arbiter.claim(self.netem.now, self.app, component, target)
        # Re-arm the edge flows the moment the restart window closes —
        # until then the component's edges rightly carry zero demand.
        self.netem.engine.schedule_in(restart + 1e-6, self.binding.sync_flows)
        return True

    def _maybe_request_handoff(
        self, component: str, deployment, claimed: set, down: set
    ) -> None:
        """No in-region target qualified: if a node in another region
        would, queue a two-phase handoff for the fleet broker instead of
        migrating directly — the target is another region's to admit."""
        region = self.region
        if region.has_pending_handoff(self.app, component):
            return
        remote = self.planner.select_target(
            component,
            deployment,
            self.orchestrator.cluster,
            self.netem,
            exclude=(claimed | down | set(region.nodes)) or None,
            achieved_mbps_of=self.binding.achieved_mbps,
        )
        if remote is None:
            return
        region.queue_handoff(
            time=self.netem.now,
            app=self.app,
            component=component,
            source_node=deployment.node_of(component),
            target_node=remote,
            severity=self._component_severity(component),
            cause=self._pending_plan_event,
        )

    def _component_severity(self, component: str) -> float:
        """Worst pending-violation severity involving ``component``."""
        return max(
            (
                v.severity
                for v in self._pending_violations
                if component in (v.component, v.dependency)
            ),
            default=0.0,
        )

    def note_external_migration(self, component: str, now: float) -> None:
        """Account a migration executed outside this controller (a
        committed handoff): the residency clock restarts and the
        violation streak resets, exactly as after a local migration."""
        self._last_migrated_at[component] = now
        self._violating_since.pop(component, None)

    def migration_restart_s(self, component: str, target: str) -> float:
        """Unavailability window for moving ``component`` to ``target``
        (base restart plus any stateful checkpoint transfer)."""
        deployment = self.orchestrator.deployment(self.app)
        return self.orchestrator.restart_seconds + self._state_transfer_s(
            component, deployment, target
        )

    def _state_transfer_s(
        self, component: str, deployment, target: str
    ) -> float:
        """Time to ship a stateful component's checkpoint to the target
        (§8: CRIU-style state transfer over the mesh)."""
        state_mb = self.binding.dag.component(component).state_mb
        if state_mb <= 0:
            return 0.0
        source = deployment.node_of(component)
        try:
            rate = max(self.netem.path_available_bandwidth(source, target), 0.5)
        except RoutingError:
            # Source unreachable (crash recovery): no checkpoint to ship,
            # the replacement cold-starts from scratch.
            return 0.0
        return state_mb * 8.0 / rate

    # -- reporting -------------------------------------------------------------------

    def migration_events(self) -> list[tuple[float, str, str, str]]:
        """(time, component, from, to) for every migration performed."""
        deployment = self.orchestrator.deployment(self.app)
        return [
            (m.time, m.pod_name, m.from_node, m.to_node)
            for m in deployment.migrations
        ]

    def table1_rows(self) -> list[tuple[int, int, int]]:
        """(iteration #, components over quota, migrated) for iterations
        where anything was over quota — the shape of Table 1."""
        rows = []
        index = 0
        for iteration in self.iterations:
            if iteration.components_over_quota > 0:
                index += 1
                rows.append(
                    (
                        index,
                        iteration.components_over_quota,
                        len(iteration.migrated),
                    )
                )
        return rows
