"""Unit tests for the social-network model."""

import numpy as np
import pytest

from repro.apps.social import (
    DEFAULT_MIX,
    REQUEST_CHAINS,
    SERVICES,
    SocialNetworkApp,
)
from repro.cluster.deployment import Deployment
from repro.core.binding import DeploymentBinding
from repro.errors import ConfigError
from repro.mesh.topology import full_mesh_topology
from repro.net.netem import NetworkEmulator


def deployed(app=None, assignment=None, capacity=1000.0):
    app = app or SocialNetworkApp(annotate_rps=50.0)
    dag = app.build_dag()
    deployment = Deployment(app.name)
    assignment = assignment or {}
    for component in dag.components:
        deployment.bind(component.name, assignment.get(component.name, "node1"))
    netem = NetworkEmulator(full_mesh_topology(3, capacity_mbps=capacity))
    binding = DeploymentBinding(dag, deployment, netem)
    binding.sync_flows()
    return app, binding


class TestInventory:
    def test_27_services(self):
        assert len(SERVICES) == 27
        assert len(SocialNetworkApp().build_dag()) == 27

    def test_unique_service_names(self):
        names = [name for name, _, _ in SERVICES]
        assert len(set(names)) == 27

    def test_chains_reference_known_services(self):
        names = {name for name, _, _ in SERVICES}
        for chain in REQUEST_CHAINS.values():
            for step in chain:
                assert step.src in names
                assert step.dst in names

    def test_total_cpu_fits_four_small_nodes(self):
        total = SocialNetworkApp().build_dag().total_resources()
        assert total.cpu <= 16.0  # four 4-core d710s (§6.2.2)

    def test_mix_sums_to_one(self):
        assert sum(DEFAULT_MIX.values()) == pytest.approx(1.0)


class TestConfigValidation:
    def test_bad_mix_sum_raises(self):
        with pytest.raises(ConfigError):
            SocialNetworkApp(mix={"read_home_timeline": 0.5})

    def test_unknown_request_type_raises(self):
        with pytest.raises(ConfigError):
            SocialNetworkApp(mix={"teleport": 1.0})

    def test_nonpositive_rps_raises(self):
        with pytest.raises(ConfigError):
            SocialNetworkApp(annotate_rps=0)


class TestTrafficProfile:
    def test_edge_demand_scales_linearly_with_rps(self):
        app = SocialNetworkApp(annotate_rps=50.0)
        src, dst, _ = app.hottest_edges(1)[0]
        assert app.edge_demand_mbps(src, dst, 100.0) == pytest.approx(
            2 * app.edge_demand_mbps(src, dst, 50.0)
        )

    def test_dag_weights_match_annotate_rps(self):
        app = SocialNetworkApp(annotate_rps=50.0)
        dag = app.build_dag()
        src, dst, per_request = app.hottest_edges(1)[0]
        assert dag.weight(src, dst) == pytest.approx(per_request * 50.0)

    def test_hottest_edge_is_timeline_post_storage(self):
        app = SocialNetworkApp()
        hottest = app.hottest_edges(1)[0]
        assert hottest[:2] == ("home-timeline-service", "post-storage-service")

    def test_update_demands_scales_flows(self):
        app, binding = deployed(
            assignment={"post-storage-service": "node2"}
        )
        app.set_rps(100.0)
        app.update_demands(binding, 0.0)
        flow = binding.netem.flow(
            "socialnet:home-timeline-service->post-storage-service"
        )
        expected = app.edge_demand_mbps(
            "home-timeline-service", "post-storage-service", 100.0
        )
        assert flow.demand_mbps == pytest.approx(expected)

    def test_negative_rps_raises(self):
        with pytest.raises(ConfigError):
            SocialNetworkApp().set_rps(-1)


class TestLatency:
    def test_known_request_types_only(self):
        app, binding = deployed()
        with pytest.raises(ConfigError):
            app.request_latency_s("teleport", binding)

    def test_colocated_latency_is_service_time_sum(self):
        app, binding = deployed()
        app.jitter_rel_std = 0.0
        expected = sum(
            step.service_ms for step in REQUEST_CHAINS["read_home_timeline"]
        ) / 1000.0
        assert app.request_latency_s(
            "read_home_timeline", binding
        ) == pytest.approx(expected)

    def test_compose_post_slowest_type(self):
        app, binding = deployed()
        app.jitter_rel_std = 0.0
        compose = app.request_latency_s("compose_post", binding)
        read = app.request_latency_s("read_home_timeline", binding)
        assert compose > read

    def test_spread_placement_adds_latency(self):
        base_app, base = deployed()
        base_app.jitter_rel_std = 0.0
        spread_assignment = {
            name: f"node{1 + i % 3}"
            for i, (name, _, _) in enumerate(SERVICES)
        }
        app, spread = deployed(assignment=spread_assignment)
        app.jitter_rel_std = 0.0
        assert app.request_latency_s(
            "read_home_timeline", spread
        ) > base_app.request_latency_s("read_home_timeline", base)

    def test_restart_stall_counted_once_per_service(self):
        assignment = {"post-storage-service": "node2"}
        app, binding = deployed(assignment=assignment)
        app.jitter_rel_std = 0.0
        healthy = app.request_latency_s("read_home_timeline", binding)
        binding.deployment.rebind(
            "post-storage-service", "node3", time=0.0, restart_seconds=10.0
        )
        binding.sync_flows()
        stalled = app.request_latency_s("read_home_timeline", binding)
        # read_home_timeline touches post-storage in several steps but
        # the 10 s stall is charged once (transfer terms shift slightly
        # because the restart also silences the edge flows).
        assert 9.0 <= stalled - healthy < 20.0

    def test_sample_latencies_mix(self):
        app, binding = deployed()
        rng = np.random.default_rng(1)
        samples = app.sample_latencies_s(binding, 50, rng)
        assert len(samples) == 50
        assert all(s > 0 for s in samples)
