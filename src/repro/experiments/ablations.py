"""Ablations of BASS's design choices.

The paper motivates several mechanisms qualitatively; these experiments
quantify each one by switching it off:

* **Headroom probing vs. always-flooding** (§4.2): replace the cheap
  headroom probes with a max-capacity probe of every monitored link at
  every interval and compare monitoring overhead.
* **Cooldown** (§4.3): migrate on first detection vs. after the
  violation persists, under a transient dip that self-heals — the
  "migration whose disruption is never amortized".
* **Improvement gate + residency** (EXPERIMENTS.md note 4): disable the
  what-if gate and the minimum residency under sustained congestion and
  count the resulting ping-pong migrations.
* **Hybrid heuristic** (§8): compare the fraction of annotated
  bandwidth kept on loopback by each ordering heuristic on a DAG that
  mixes a deep pipeline with a wide fan-out.
* **Online profiling** (§8): start from badly mis-annotated
  requirements and show the profiler recovering the true traffic
  profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..apps.social import SocialNetworkApp
from ..cluster.orchestrator import ClusterState
from ..config import BassConfig
from ..core.dag import Component, ComponentDAG
from ..core.ordering import order_components
from ..core.placement import PlacementEngine
from ..core.profiling import OnlineProfiler
from ..mesh.node import MeshNode
from ..mesh.topology import MeshTopology
from ..obs.trace import TracerBase
from ..runner import CellSpec, ResultCache, SweepSpec, run_sweep
from ..sim.rng import RngStreams
from .common import build_env, deploy_app, run_timeline
from .migration import _PairApp


# -- probing strategy ---------------------------------------------------------


@dataclass(frozen=True)
class ProbingAblationResult:
    """Monitoring overhead with and without headroom probing."""

    headroom_overhead_fraction: float
    flooding_overhead_fraction: float


def ablate_headroom_probing(
    *, duration_s: float = 600.0, seed: int = 81
) -> ProbingAblationResult:
    """Monitoring cost: headroom probes vs. flooding every interval.

    Both runs deploy the social network on the CityLab mesh and monitor
    every link under the app's edges each 30 s cycle; the flooding
    variant calls a max-capacity probe where BASS would make a headroom
    probe.  The paper's claim (§6.3.4): headroom probing bounds
    overhead to a fraction of a percent, while capacity probing floods
    the link.
    """

    def run(flood: bool) -> float:
        env = build_env(seed=seed, trace_duration_s=duration_s)
        app = SocialNetworkApp(annotate_rps=50.0)
        handle = deploy_app(env, app, "bass-longest-path",
                            config=BassConfig(migrations_enabled=False),
                            start_controller=False)
        app.set_rps(50.0)
        app.update_demands(handle.binding, 0.0)
        monitor = handle.monitor
        deployment = handle.deployment

        def cycle() -> None:
            for src, dst, _ in handle.binding.inter_node_edges():
                path = monitor.links_of_path(
                    deployment.node_of(src), deployment.node_of(dst)
                )
                for a, b in path:
                    if flood:
                        monitor.full_probe(a, b)
                    else:
                        cached = monitor.cached_capacity(a, b)
                        monitor.headroom_probe(a, b, cached * 0.2)

        env.engine.every(30.0, cycle)
        run_timeline(env, duration_s)
        return monitor.probe_overhead_fraction()

    return ProbingAblationResult(
        headroom_overhead_fraction=run(flood=False),
        flooding_overhead_fraction=run(flood=True),
    )


# -- cooldown -------------------------------------------------------------------


@dataclass(frozen=True)
class CooldownAblationResult:
    """Migrations triggered by a transient dip, per cooldown setting."""

    cooldown_s: float
    migrations: int


def ablate_cooldown(
    cooldowns: tuple[float, ...] = (0.0, 45.0),
    *,
    dip_duration_s: float = 40.0,
    seed: int = 82,
) -> list[CooldownAblationResult]:
    """A 40 s capacity dip that self-heals: with no cooldown the
    controller migrates (and pays the restart for nothing); with a
    45 s cooldown the dip passes before the trigger fires (§4.3: "to
    avoid reacting to transient changes ... we ensure that there is a
    cooldown period")."""
    results = []
    for cooldown in cooldowns:
        # The pair's producer is pinned to node3; the consumer starts
        # across the node1-node3 link, which dips transiently.
        topology = MeshTopology()
        topology.add_node(MeshNode("node1", cpu_cores=8))
        topology.add_node(MeshNode("node3", cpu_cores=1, memory_mb=512))
        topology.add_node(MeshNode("node4", cpu_cores=8))
        for a, b in (("node1", "node3"), ("node3", "node4"),
                     ("node1", "node4")):
            topology.add_link(a, b, capacity_mbps=25.0)
        env = build_env(topology, seed=seed)
        config = BassConfig().with_migration(cooldown_s=cooldown)
        handle = deploy_app(
            env,
            _PairApp(),
            "bass-longest-path",
            config=config,
            force_assignments={"consumer": "node1"},
        )
        link = topology.link("node1", "node3")
        run_timeline(
            env,
            240.0,
            events=[
                (50.0, lambda link=link: link.set_rate_limit(3.0)),
                (
                    50.0 + dip_duration_s,
                    lambda link=link: link.set_rate_limit(None),
                ),
            ],
        )
        results.append(
            CooldownAblationResult(
                cooldown_s=cooldown,
                migrations=len(handle.deployment.migrations),
            )
        )
    return results


# -- improvement gate / residency --------------------------------------------------


@dataclass(frozen=True)
class StabilityAblationResult:
    """Migration churn with and without the stability guards."""

    guarded_migrations: int
    unguarded_migrations: int


def ablate_stability_guards(
    *, duration_s: float = 420.0, seed: int = 83
) -> StabilityAblationResult:
    """Sustained congestion with no genuinely better placement: the
    improvement gate and minimum residency must prevent ping-pong.

    Without them, every evaluation finds a violation and happily moves
    the component somewhere equivalent, paying a restart each time.
    """

    def run(guarded: bool) -> int:
        topology = MeshTopology()
        topology.add_node(MeshNode("node1", cpu_cores=8))
        topology.add_node(MeshNode("node3", cpu_cores=1, memory_mb=512))
        topology.add_node(MeshNode("node4", cpu_cores=8))
        for a, b in (("node1", "node3"), ("node3", "node4"),
                     ("node1", "node4")):
            topology.add_link(a, b, capacity_mbps=4.0)  # all inadequate
        env = build_env(topology, seed=seed, restart_seconds=5.0)
        config = BassConfig().with_migration(
            cooldown_s=0.0,
            improvement_margin=0.1 if guarded else 0.0,
            min_residency_s=None if guarded else 0.0,
        )
        handle = deploy_app(
            env,
            _PairApp(),
            "bass-longest-path",
            config=config,
            force_assignments={"consumer": "node1"},
        )
        if not guarded:
            # Fully disable the what-if gate: any feasible target looks
            # acceptable, so every violating evaluation migrates.
            handle.controller.planner.improvement_margin = -1e9
        run_timeline(env, duration_s)
        return len(handle.deployment.migrations)

    return StabilityAblationResult(
        guarded_migrations=run(guarded=True),
        unguarded_migrations=run(guarded=False),
    )


# -- hybrid heuristic -----------------------------------------------------------------


def chain_shape_dag() -> ComponentDAG:
    """A pure pipeline — the longest-path heuristic's home turf."""
    dag = ComponentDAG("chain")
    names = [f"stage{i}" for i in range(8)]
    for name in names:
        dag.add_component(Component(name, cpu=2))
    for i, (src, dst) in enumerate(zip(names, names[1:])):
        dag.add_dependency(src, dst, 10.0 - i)
    return dag.validate()


@dataclass(frozen=True)
class HeuristicAblationCell:
    """Loopback bandwidth fraction achieved by one ordering heuristic."""

    heuristic: str
    shape: str
    colocated_fraction: float


def ablate_hybrid_heuristic(
    *, node_cores: float = 6.0, n_nodes: int = 3
) -> list[HeuristicAblationCell]:
    """Pack two application shapes with each heuristic onto small nodes
    and measure the fraction of annotated bandwidth kept on loopback —
    the quantity placement exists to maximize.

    Shapes: the 27-service social network (fan-out heavy, where the
    paper's two heuristics genuinely diverge) and a pure pipeline.  The
    hybrid heuristic (§8) must match the better pure heuristic on each.
    """
    from ..cluster.resources import NodeResources, ResourceSpec

    def build(shape: str) -> ComponentDAG:
        if shape == "social":
            return SocialNetworkApp(annotate_rps=50.0).build_dag()
        return chain_shape_dag()

    results = []
    for shape in ("social", "chain"):
        for heuristic in ("bfs", "longest_path", "hybrid"):
            cluster = ClusterState(
                NodeResources(f"n{i}", ResourceSpec(node_cores, 1e6))
                for i in range(n_nodes)
            )
            dag = build(shape)
            order = order_components(dag, heuristic)
            assignments = PlacementEngine(cluster).place(dag.to_pods(), order)
            total = dag.total_bandwidth_mbps()
            colocated = sum(
                weight
                for src, dst, weight in dag.edges()
                if assignments[src] == assignments[dst]
            )
            results.append(
                HeuristicAblationCell(
                    heuristic=heuristic,
                    shape=shape,
                    colocated_fraction=colocated / total,
                )
            )
    return results


# -- online profiling ---------------------------------------------------------------------


@dataclass(frozen=True)
class ProfilingAblationResult:
    """Annotation error before and after online profiling."""

    initial_error: float
    profiled_error: float
    edges_updated: int


def ablate_online_profiling(
    *, duration_s: float = 200.0, seed: int = 85
) -> ProfilingAblationResult:
    """Deploy the social network with requirements mis-annotated by a
    random factor in [0.2, 5]x, observe traffic online, and measure the
    mean relative annotation error before and after ``apply()``."""
    rng = RngStreams(seed).get("misannotate")
    env = build_env(seed=seed, with_traces=False)
    app = SocialNetworkApp(annotate_rps=50.0)
    handle = deploy_app(
        env,
        app,
        "bass-longest-path",
        config=BassConfig(migrations_enabled=False),
        start_controller=False,
    )
    app.set_rps(50.0)
    app.update_demands(handle.binding, 0.0)
    dag = handle.dag
    truth = {
        (src, dst): handle.binding.edge_demand(src, dst)
        for src, dst, _ in dag.edges()
    }
    # Corrupt every annotation (the binding's demands stay truthful —
    # they model what the app actually sends).
    for (src, dst), true_value in truth.items():
        factor = float(rng.uniform(0.2, 5.0))
        dag.update_weight(src, dst, max(true_value * factor, 0.01))

    def mean_error() -> float:
        errors = []
        for (src, dst), true_value in truth.items():
            if true_value <= 0:
                continue
            errors.append(
                abs(dag.weight(src, dst) - true_value) / true_value
            )
        return float(np.mean(errors))

    initial_error = mean_error()
    profiler = OnlineProfiler(handle.binding, min_samples=30, window=150)
    env.engine.every(1.0, profiler.sample)
    run_timeline(env, duration_s)
    updates = profiler.apply()
    return ProfilingAblationResult(
        initial_error=initial_error,
        profiled_error=mean_error(),
        edges_updated=len(updates),
    )


# -- routing strategy -------------------------------------------------------------


@dataclass(frozen=True)
class RoutingAblationCell:
    """Path bottleneck capacity per routing strategy for one node pair."""

    src: str
    dst: str
    min_hop_mbps: float
    widest_mbps: float


def _ablation_grid_cells(*, quick: bool = False) -> tuple[CellSpec, ...]:
    """Every ablation as a sweep cell, in canonical grid order.

    Each cell's kwargs materialize that ablation's defaults explicitly
    so the cache key captures the full configuration (a default change
    in the ablation's signature alone would otherwise be invisible to
    the key; the code fingerprint still covers the body).
    """
    prefix = "repro.experiments.ablations:"
    return (
        CellSpec(
            fn=prefix + "ablate_headroom_probing",
            kwargs={"duration_s": 150.0 if quick else 600.0, "seed": 81},
            label="headroom_probing",
        ),
        CellSpec(
            fn=prefix + "ablate_cooldown",
            kwargs={
                "cooldowns": (0.0, 45.0),
                "dip_duration_s": 40.0,
                "seed": 82,
            },
            label="cooldown",
        ),
        CellSpec(
            fn=prefix + "ablate_stability_guards",
            kwargs={"duration_s": 150.0 if quick else 420.0, "seed": 83},
            label="stability_guards",
        ),
        CellSpec(
            fn=prefix + "ablate_hybrid_heuristic",
            kwargs={"node_cores": 6.0, "n_nodes": 3},
            label="hybrid_heuristic",
        ),
        CellSpec(
            fn=prefix + "ablate_online_profiling",
            kwargs={"duration_s": 80.0 if quick else 200.0, "seed": 85},
            label="online_profiling",
        ),
        CellSpec(
            fn=prefix + "ablate_routing_strategy",
            kwargs={},
            label="routing_strategy",
        ),
    )


def ablation_grid_spec(
    *, quick: bool = False, include: Optional[tuple[str, ...]] = None
) -> SweepSpec:
    """The full ablation battery as one sweep spec.

    Args:
        quick: shorten the long-running ablations (CLI smoke mode).
        include: restrict to these cell labels, keeping grid order.
    """
    cells = _ablation_grid_cells(quick=quick)
    if include is not None:
        unknown = set(include) - {cell.label for cell in cells}
        if unknown:
            raise ValueError(f"unknown ablation(s): {sorted(unknown)}")
        cells = tuple(cell for cell in cells if cell.label in include)
    return SweepSpec(name="ablations", cells=cells)


def ablation_grid(
    *,
    quick: bool = False,
    include: Optional[tuple[str, ...]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    tracer: Optional[TracerBase] = None,
    backend: str = "pool",
    chunk_size: Optional[int] = None,
    steal: bool = True,
) -> dict[str, object]:
    """Run the ablation battery through the sweep runner.

    Returns ``{cell label: that ablation's result}`` in grid order.
    """
    spec = ablation_grid_spec(quick=quick, include=include)
    outcome = run_sweep(
        spec,
        jobs=jobs,
        cache=cache,
        tracer=tracer,
        backend=backend,
        chunk_size=chunk_size,
        steal=steal,
    )
    return {
        cell.label: result
        for cell, result in zip(spec.cells, outcome.results)
    }


def ablate_routing_strategy() -> list[RoutingAblationCell]:
    """BASS works with whatever routing the mesh runs (§1).  Compare the
    path bottleneck capacity every worker pair sees under min-hop vs
    widest-path routing on the CityLab subset — quantifying how much
    the substrate's routing choice moves the ceiling BASS works under.
    """
    from ..mesh.routing import Router
    from ..mesh.topology import citylab_subset

    topology = citylab_subset(control_node=False)
    min_hop = Router(topology, strategy="min_hop")
    widest = Router(topology, strategy="widest")
    workers = topology.worker_names
    cells = []
    for i, src in enumerate(workers):
        for dst in workers[i + 1 :]:
            cells.append(
                RoutingAblationCell(
                    src=src,
                    dst=dst,
                    min_hop_mbps=min_hop.bottleneck_bandwidth(src, dst, 0.0),
                    widest_mbps=widest.bottleneck_bandwidth(src, dst, 0.0),
                )
            )
    return cells
