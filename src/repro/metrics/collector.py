"""Prometheus-flavoured time-series collection.

The paper logs inter-pod traffic and latency samples into Prometheus
and queries them over HTTP (§5).  Here, experiment code records samples
into named :class:`TimeSeries` (with optional label sets) and queries
them back for summaries; series export to CSV for external analysis.
"""

from __future__ import annotations

import csv
import re
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Characters allowed verbatim in exported CSV filenames; anything else
#: (path separators, spaces, colons from label values like
#: ``link="node1:node2"``) is folded to ``-``.
_UNSAFE_FILENAME = re.compile(r"[^A-Za-z0-9._-]+")


def _sanitize_filename_part(text: str) -> str:
    cleaned = _UNSAFE_FILENAME.sub("-", text).strip("-.")
    return cleaned or "x"


@dataclass
class TimeSeries:
    """One named series of (time, value) samples with fixed labels."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    #: Whether ``times`` is non-decreasing so far.  Simulation series
    #: always are (the engine clock never goes backwards), which lets
    #: :meth:`between` slice with bisect instead of scanning.
    _sorted: bool = field(default=True, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._sorted = all(
            a <= b for a, b in zip(self.times, self.times[1:])
        )

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            self._sorted = False
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def values_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)

    def times_array(self) -> np.ndarray:
        return np.asarray(self.times, dtype=float)

    def between(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with start <= time < end.

        O(log n + k) on the (usual) chronologically recorded series via
        bisect; series whose times were recorded out of order fall back
        to a full scan with identical results.
        """
        subset = TimeSeries(self.name, self.labels)
        if self._sorted:
            lo = bisect_left(self.times, start)
            hi = bisect_left(self.times, end, lo)
            subset.times = self.times[lo:hi]
            subset.values = self.values[lo:hi]
            return subset
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                subset.record(t, v)
        return subset

    def mean(self) -> float:
        return float(self.values_array().mean()) if self.values else float("nan")

    def to_csv(self, path: str | Path) -> None:
        """Write the series as ``time_s,value`` rows with a header."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_s", "value"])
            writer.writerows(zip(self.times, self.values))


class MetricsCollector:
    """Registry of time series, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], TimeSeries] = {}

    def series(self, name: str, **labels: str) -> TimeSeries:
        """Get (creating if needed) the series for a name + label set."""
        key = (name, tuple(sorted(labels.items())))
        if key not in self._series:
            self._series[key] = TimeSeries(name, key[1])
        return self._series[key]

    def record(self, name: str, time: float, value: float, **labels: str) -> None:
        self.series(name, **labels).record(time, value)

    def all_series(self, name: str) -> list[TimeSeries]:
        """Every label variant recorded under ``name``."""
        return [s for (n, _), s in self._series.items() if n == name]

    def names(self) -> set[str]:
        return {name for name, _ in self._series}

    def export_dir(self, directory: str | Path) -> list[Path]:
        """Write every series to ``directory`` as one CSV per series.

        Filenames are ``<name>[__k-v...].csv`` with every part
        sanitized to filesystem-safe characters; distinct series whose
        sanitized names collide (e.g. label values ``"a/b"`` and
        ``"a:b"``) get a numeric suffix so no file is overwritten.
        Returns the paths.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        used: set[str] = set()
        for (name, labels), series in self._series.items():
            parts = [_sanitize_filename_part(name)]
            parts.extend(
                f"{_sanitize_filename_part(k)}-{_sanitize_filename_part(v)}"
                for k, v in labels
            )
            stem = "__".join(parts)
            filename = f"{stem}.csv"
            sequence = 2
            while filename in used:
                filename = f"{stem}__{sequence}.csv"
                sequence += 1
            used.add(filename)
            path = directory / filename
            series.to_csv(path)
            written.append(path)
        return written
