"""Fault injector: topology state flips, flow teardown, reconvergence."""

import pytest

from repro.errors import RoutingError, SimulationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    LinkDown,
    LinkFlap,
    NodeCrash,
    Partition,
    ProbeBlackout,
)
from repro.mesh.topology import full_mesh_topology, line_topology
from repro.net.netem import NetworkEmulator
from repro.obs.trace import Tracer
from repro.sim.engine import Engine


def make_netem(topology):
    return NetworkEmulator(topology, engine=Engine(), tick_s=1.0)


def install(netem, events, tracer=None):
    injector = FaultInjector(FaultPlan(events), netem, tracer=tracer)
    injector.install()
    return injector


class TestNodeCrash:
    def test_crash_tears_down_crossing_flows(self):
        netem = make_netem(line_topology([10.0, 10.0]))
        netem.add_flow("f", "node1", "node3", 2.0)
        injector = install(netem, [NodeCrash(at_s=5.0, node="node2")])
        netem.engine.run_until(10.0)
        assert not netem.topology.is_node_up("node2")
        assert not netem.topology.is_link_up("node1", "node2")
        assert not netem.has_flow("f")
        assert injector.injected[0].flows_removed == 1
        with pytest.raises(RoutingError):
            netem.router.traceroute("node1", "node3")

    def test_reboot_restores_node_and_links(self):
        netem = make_netem(line_topology([10.0, 10.0]))
        install(
            netem,
            [NodeCrash(at_s=5.0, node="node2", reboot_after_s=20.0)],
        )
        netem.engine.run_until(10.0)
        assert not netem.topology.is_node_up("node2")
        netem.engine.run_until(30.0)
        assert netem.topology.is_node_up("node2")
        assert netem.topology.is_link_up("node1", "node2")
        assert netem.router.traceroute("node1", "node3") == (
            "node1", "node2", "node3",
        )

    def test_ground_truth_records_last_fault(self):
        netem = make_netem(line_topology([10.0, 10.0]))
        injector = install(netem, [NodeCrash(at_s=7.0, node="node3")])
        assert injector.last_fault_of("node3") is None
        netem.engine.run_until(8.0)
        fault = injector.last_fault_of("node3")
        assert fault is not None and fault[1] == 7.0
        assert injector.last_fault_of("node1") is None


class TestLinkFaults:
    def test_link_down_reroutes_flows(self):
        netem = make_netem(full_mesh_topology(3))
        netem.add_flow("f", "node1", "node2", 2.0)
        assert netem.flow("f").path == ("node1", "node2")
        injector = install(netem, [LinkDown(at_s=5.0, a="node1", b="node2")])
        netem.engine.run_until(10.0)
        assert netem.has_flow("f")
        assert netem.flow("f").path == ("node1", "node3", "node2")
        assert injector.injected[0].flows_rerouted == 1
        # Both endpoints are still alive; only the link failed.
        assert netem.topology.is_node_up("node1")
        assert netem.topology.is_node_up("node2")

    def test_restore_heals_the_direct_path(self):
        netem = make_netem(full_mesh_topology(3))
        netem.add_flow("f", "node1", "node2", 2.0)
        install(
            netem,
            [LinkDown(at_s=5.0, a="node1", b="node2", restore_after_s=10.0)],
        )
        netem.engine.run_until(20.0)
        assert netem.topology.is_link_up("node1", "node2")
        assert netem.flow("f").path == ("node1", "node2")

    def test_flap_applies_every_cycle(self):
        netem = make_netem(full_mesh_topology(3))
        injector = install(
            netem,
            [LinkFlap(at_s=5.0, a="node1", b="node2", down_s=2.0, up_s=2.0,
                      cycles=3)],
        )
        netem.engine.run_until(30.0)
        kinds = [f.kind for f in injector.injected]
        assert kinds.count("link_down") == 3
        assert kinds.count("link_down.cleared") == 3
        assert netem.topology.is_link_up("node1", "node2")


class TestPartition:
    def test_partition_cuts_only_cross_links(self):
        netem = make_netem(full_mesh_topology(4))
        install(
            netem,
            [Partition(at_s=5.0, group=("node1", "node2"))],
        )
        netem.engine.run_until(10.0)
        assert netem.topology.is_link_up("node1", "node2")
        assert netem.topology.is_link_up("node3", "node4")
        assert not netem.topology.is_link_up("node1", "node3")
        assert not netem.topology.is_link_up("node2", "node4")
        with pytest.raises(RoutingError):
            netem.router.traceroute("node1", "node4")

    def test_heal_reconnects(self):
        netem = make_netem(full_mesh_topology(4))
        install(
            netem,
            [Partition(at_s=5.0, group=("node1",), heal_after_s=10.0)],
        )
        netem.engine.run_until(20.0)
        assert netem.router.traceroute("node1", "node4") == ("node1", "node4")

    def test_heal_does_not_resurrect_crashed_endpoint(self):
        """A link that is down both from the partition and because its
        endpoint crashed stays down after the partition heals."""
        netem = make_netem(full_mesh_topology(3))
        install(
            netem,
            [
                NodeCrash(at_s=4.0, node="node1"),
                Partition(at_s=5.0, group=("node1",), heal_after_s=10.0),
            ],
        )
        netem.engine.run_until(20.0)
        assert not netem.topology.is_link_up("node1", "node2")
        assert not netem.topology.is_link_up("node1", "node3")


class TestProbeBlackout:
    def test_blackout_windows_no_substrate_change(self):
        netem = make_netem(full_mesh_topology(3))
        injector = install(
            netem, [ProbeBlackout(at_s=10.0, node="node2", duration_s=5.0)]
        )
        netem.engine.run_until(20.0)
        assert injector.in_blackout("node2", 12.0)
        assert not injector.in_blackout("node2", 15.0)
        assert not injector.in_blackout("node2", 9.0)
        assert not injector.in_blackout("node1", 12.0)
        assert netem.topology.is_node_up("node2")


class TestLifecycle:
    def test_double_install_rejected(self):
        netem = make_netem(full_mesh_topology(3))
        injector = FaultInjector(
            FaultPlan([NodeCrash(at_s=1.0, node="node1")]), netem
        )
        injector.install()
        with pytest.raises(SimulationError, match="already installed"):
            injector.install()

    def test_install_validates_against_topology(self):
        netem = make_netem(full_mesh_topology(3))
        injector = FaultInjector(
            FaultPlan([NodeCrash(at_s=1.0, node="ghost")]), netem
        )
        with pytest.raises(SimulationError, match="unknown node"):
            injector.install()
        assert not injector.installed

    def test_trace_events_emitted(self):
        tracer = Tracer()
        netem = make_netem(full_mesh_topology(3))
        install(
            netem,
            [NodeCrash(at_s=5.0, node="node2", reboot_after_s=10.0)],
            tracer=tracer,
        )
        netem.engine.run_until(20.0)
        kinds = [e.kind for e in tracer.events]
        assert kinds == ["fault.injected", "fault.cleared"]
        injected, cleared = tracer.events
        assert injected.data["fault"] == "node_crash"
        assert injected.data["target"] == "node2"
        assert cleared.cause == injected.id
