"""BASS — the paper's primary contribution.

* :mod:`repro.core.dag` — application component DAGs with bandwidth
  edge weights (§3.1, §5).
* :mod:`repro.core.ordering` — the breadth-first and longest-path
  component-ordering heuristics (Algorithms 1 and 2).
* :mod:`repro.core.placement` — node ranking and greedy packing of the
  ordered components (§3.2.1).
* :mod:`repro.core.migration` — migration-candidate selection
  (Algorithm 3) and target-node choice (§3.2.2).
* :mod:`repro.core.netmonitor` — max-capacity and headroom probing with
  capacity caching and overhead accounting (§4.2).
* :mod:`repro.core.controller` — the bandwidth controller: violation
  detection, cooldown, and migration triggering (§4.3).
* :mod:`repro.core.controlplane` — the multi-tenant control plane:
  shared fleet monitor, epoch loop, and migration arbiter.
* :mod:`repro.core.registry` — the pluggable scheduler registry.
* :mod:`repro.core.scheduler` — the BASS scheduler tying it together.
* :mod:`repro.core.binding` — keeps the network emulator's flows in
  sync with a deployment's inter-node edges.
"""

from .binding import DeploymentBinding
from .controller import BandwidthController, ControllerIteration
from .controlplane import (
    ArbiterClaim,
    ArbiterConflict,
    ControlPlane,
    FleetArbiter,
    check_cluster_ledger,
)
from .dag import Component, ComponentDAG
from .explain import EdgeFate, PlacementExplanation, explain_placement
from .migration import MigrationPlanner, Violation
from .netmonitor import NetMonitor, ProbeResult
from .registry import (
    get_scheduler,
    register_scheduler,
    scheduler_names,
    unregister_scheduler,
)
from .ordering import (
    breadth_first_order,
    hybrid_order,
    longest_path_order,
    order_components,
)
from .placement import PlacementEngine, rank_nodes
from .profiling import EdgeProfile, OnlineProfiler
from .scheduler import BassScheduler

__all__ = [
    "ArbiterClaim",
    "ArbiterConflict",
    "BandwidthController",
    "BassScheduler",
    "Component",
    "ComponentDAG",
    "ControlPlane",
    "ControllerIteration",
    "DeploymentBinding",
    "EdgeFate",
    "EdgeProfile",
    "FleetArbiter",
    "MigrationPlanner",
    "NetMonitor",
    "OnlineProfiler",
    "PlacementEngine",
    "PlacementExplanation",
    "ProbeResult",
    "Violation",
    "breadth_first_order",
    "check_cluster_ledger",
    "explain_placement",
    "get_scheduler",
    "hybrid_order",
    "longest_path_order",
    "order_components",
    "rank_nodes",
    "register_scheduler",
    "scheduler_names",
    "unregister_scheduler",
]
