"""Table 3: per-component scheduling latency, k3s vs BASS.

Paper (Go implementations on CloudLab): ~1.27–1.28 ms per component for
k3s vs 1.28–1.5 ms for BASS — i.e. BASS's whole-DAG scheduling costs
about the same per component as the baseline.  Our absolute times are
Python-on-this-host; the reproducible shape is the *ratio*.
"""

import pytest

from repro.experiments.overheads import table3_scheduling_latency

from _reporting import fmt, run_once, save_table


@pytest.mark.benchmark(group="table3")
def test_table3_sched_latency(benchmark):
    rows = run_once(benchmark, table3_scheduling_latency, trials=20)
    save_table(
        "table3_sched_latency",
        ["application", "scheduler", "avg_ms_per_component", "std_ms"],
        [
            [r.app, r.scheduler, fmt(r.avg_ms, 4), fmt(r.std_ms, 4)]
            for r in rows
        ],
        note="paper: k3s 1.27-1.28 ms vs BASS 1.28-1.5 ms per component "
        "(comparable); ours are Python-host absolute values",
    )

    def avg(app, scheduler):
        return next(
            r.avg_ms for r in rows if r.app == app and r.scheduler == scheduler
        )

    for app in ("social_network", "video_conference", "camera"):
        bass = avg(app, "bass")
        k3s = avg(app, "k3s")
        # Comparable per-component cost: BASS within ~5x of k3s (the
        # paper's worst ratio is 1.2x; we allow scheduling-substrate
        # noise at microsecond scales).
        assert bass < 5 * k3s + 0.05
