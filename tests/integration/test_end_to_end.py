"""End-to-end integration: schedule → deploy → emulate → migrate."""

import numpy as np
import pytest

from repro.apps.camera import CameraPipelineApp
from repro.apps.social import SocialNetworkApp
from repro.apps.video import Participant, VideoConferenceApp
from repro.config import BassConfig
from repro.experiments.common import (
    build_env,
    deploy_app,
    run_timeline,
    schedule_with,
    set_node_egress_limit,
)
from repro.mesh.topology import citylab_subset, full_mesh_topology


class TestDeployAllApps:
    @pytest.mark.parametrize(
        "scheduler", ["k3s", "bass-bfs", "bass-longest-path"]
    )
    def test_camera_deploys_on_citylab(self, scheduler):
        env = build_env(seed=1, with_traces=False)
        handle = deploy_app(
            env, CameraPipelineApp(), scheduler, start_controller=False
        )
        assert len(handle.deployment) == 5
        assert handle.deployment.nodes_used <= set(env.cluster.node_names)

    @pytest.mark.parametrize(
        "scheduler", ["k3s", "bass-bfs", "bass-longest-path"]
    )
    def test_social_deploys_on_citylab(self, scheduler):
        env = build_env(seed=1, with_traces=False)
        handle = deploy_app(
            env,
            SocialNetworkApp(annotate_rps=50),
            scheduler,
            start_controller=False,
        )
        assert len(handle.deployment) == 27

    def test_video_clients_land_on_their_pins(self):
        env = build_env(seed=1, with_traces=False)
        app = VideoConferenceApp.conference_at_nodes(
            ["node1", "node2", "node3", "node4"], 2
        )
        handle = deploy_app(env, app, "bass-longest-path", start_controller=False)
        for participant in app.participants:
            assert (
                handle.deployment.node_of(participant.pub_component)
                == participant.node
            )

    def test_bass_colocates_more_than_k3s(self):
        """The qualitative heart of the paper: bandwidth-aware packing
        leaves less traffic on the wireless links."""
        def crossing_demand(scheduler):
            env = build_env(seed=2, with_traces=False)
            handle = deploy_app(
                env,
                SocialNetworkApp(annotate_rps=50),
                scheduler,
                start_controller=False,
            )
            return sum(w for _, _, w in handle.binding.inter_node_edges())

        assert crossing_demand("bass-longest-path") < crossing_demand("k3s")

    def test_force_assignments(self):
        env = build_env(seed=1, with_traces=False)
        handle = deploy_app(
            env,
            CameraPipelineApp(),
            "bass-bfs",
            start_controller=False,
            force_assignments={
                "camera-stream": "node1",
                "frame-sampler": "node2",
                "object-detector": "node3",
                "image-listener": "node4",
                "label-listener": "node4",
            },
        )
        assert handle.deployment.node_of("frame-sampler") == "node2"

    def test_unknown_scheduler_raises(self):
        env = build_env(seed=1)
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            schedule_with("cosmic-ray", CameraPipelineApp().build_dag(), env)


class TestDynamicBehaviour:
    def test_throttle_then_migrate_restores_goodput(self):
        """Full loop: healthy deployment, throttle, detection, migration,
        recovery — the Fig 12 mechanic on a minimal app."""
        topology = full_mesh_topology(3, capacity_mbps=50.0)
        env = build_env(topology, seed=3, restart_seconds=5.0)
        app = VideoConferenceApp(
            [Participant(f"p{i}", "node3", publishes=(i == 0)) for i in range(5)],
            stream_mbps=3.0,
        )
        config = BassConfig().with_migration(cooldown_s=0.0)
        handle = deploy_app(
            env, app, "bass-longest-path", config=config,
            force_assignments={"sfu": "node2"},
        )
        set_node_egress_limit(env, "node2", 2.0)
        run_timeline(env, 120.0)
        assert handle.deployment.migrations
        assert handle.deployment.node_of("sfu") != "node2"
        receiver = app.participants[1]
        assert app.client_bitrate_mbps(receiver, handle.binding) >= 2.9

    def test_no_migration_when_disabled(self):
        topology = full_mesh_topology(3, capacity_mbps=50.0)
        env = build_env(topology, seed=3)
        app = VideoConferenceApp(
            [Participant(f"p{i}", "node3", publishes=(i == 0)) for i in range(5)],
            stream_mbps=3.0,
        )
        handle = deploy_app(
            env,
            app,
            "bass-longest-path",
            config=BassConfig(migrations_enabled=False),
            force_assignments={"sfu": "node2"},
        )
        set_node_egress_limit(env, "node2", 2.0)
        run_timeline(env, 120.0)
        assert handle.deployment.migrations == []

    def test_probe_overhead_stays_small(self):
        env = build_env(seed=4, trace_duration_s=300.0)
        app = SocialNetworkApp(annotate_rps=50.0)
        handle = deploy_app(env, app, "bass-longest-path")
        app.set_rps(50.0)
        app.update_demands(handle.binding, 0.0)
        run_timeline(env, 300.0)
        assert handle.monitor.probe_overhead_fraction() < 0.10
        assert handle.monitor.headroom_probe_count > 0

    def test_migration_respects_capacity_ledger(self):
        """After arbitrary migrations, no node is oversubscribed."""
        env = build_env(seed=5, trace_duration_s=600.0, restart_seconds=4.0)
        app = SocialNetworkApp(annotate_rps=70.0)
        config = BassConfig().with_migration(cooldown_s=0.0)
        handle = deploy_app(env, app, "bass-longest-path", config=config)
        app.set_rps(70.0)
        app.update_demands(handle.binding, 0.0)
        run_timeline(env, 600.0)
        for node in env.cluster.schedulable_nodes():
            assert node.allocated.cpu <= node.capacity.cpu + 1e-6
            assert node.allocated.memory_mb <= node.capacity.memory_mb + 1e-6


class TestDeterminism:
    def test_identical_seeds_identical_outcomes(self):
        def run_once():
            env = build_env(seed=77, trace_duration_s=200.0)
            app = SocialNetworkApp(annotate_rps=60.0)
            config = BassConfig().with_migration(cooldown_s=0.0)
            handle = deploy_app(env, app, "bass-longest-path", config=config)
            app.set_rps(60.0)
            app.update_demands(handle.binding, 0.0)
            rng = env.rng.get("latency")
            samples = []
            run_timeline(
                env,
                200.0,
                on_tick=lambda t: samples.extend(
                    app.sample_latencies_s(handle.binding, 3, rng)
                ),
            )
            return samples, handle.deployment.bindings, [
                (m.time, m.pod_name, m.to_node)
                for m in handle.deployment.migrations
            ]

        first = run_once()
        second = run_once()
        assert first[1] == second[1]
        assert first[2] == second[2]
        assert np.allclose(first[0], second[0])

    def test_different_seeds_differ(self):
        def trace_signature(seed):
            env = build_env(seed=seed, trace_duration_s=100.0)
            return [
                env.topology.capacity("node2", "node3", float(t))
                for t in range(0, 100, 10)
            ]

        assert trace_signature(1) != trace_signature(2)
