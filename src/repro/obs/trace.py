"""Flight recorder: structured, causally-linked decision tracing.

Every orchestrator decision — a probe, a detected violation, an epoch
plan, a migration, a restart — can be emitted as a :class:`TraceEvent`
carrying simulation time, the tenant it concerns, the controller epoch,
and a ``cause`` reference to the event that triggered it.  Walking the
``cause`` links reconstructs the full causal chain behind any action
(see :mod:`repro.obs.report`): goodput sample → threshold breach →
plan → migration → restart.

Tracing is opt-in and free when off: the module-level default tracer is
:data:`NULL_TRACER`, whose ``emit`` does nothing, and instrumented hot
paths guard event construction behind the ``enabled`` flag so a
disabled run pays a single attribute check per site.

Example:
    >>> tracer = Tracer()
    >>> probe = tracer.emit("probe.headroom", 30.0, src="n1", dst="n2")
    >>> violation = tracer.emit(
    ...     "violation.detected", 30.0, cause=probe, component="sfu"
    ... )
    >>> tracer.events[1].cause == probe
    True
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stream import StreamingSink

#: The core event taxonomy (emitters may add further kinds; the report
#: treats unknown kinds as timeline annotations).  Documented in
#: DESIGN.md's "Observability" section.
EVENT_KINDS = (
    "run.start",  # an experiment substrate was assembled
    "placement.plan",  # scheduler ran a heuristic over a DAG
    "placement.decision",  # placement engine picked a node for a pod
    "placement.bound",  # orchestrator committed a pod → node binding
    "probe.max_capacity",  # net-monitor flooded a link (full probe)
    "probe.headroom",  # net-monitor checked spare capacity on a link
    "violation.detected",  # an edge tripped a goodput/utilization trigger
    "violation.cleared",  # an edge left the violating set
    "epoch.plan",  # controller selected migration candidates
    "migration.target_ranked",  # planner ranked candidate target nodes
    "migration.selected",  # controller committed to moving a component
    "migration.deflected",  # arbiter claims changed/blocked the choice
    "migration.aborted",  # a selected migration failed to execute
    "restart",  # orchestrator rebound the pod; restart window opened
    "fault.injected",  # the chaos layer executed a planned fault
    "fault.cleared",  # a planned fault ended (reboot, link restored)
    "node.suspected",  # heartbeats missing; node under suspicion
    "node.confirmed_dead",  # suspicion confirmed after repeated misses
    "node.recovered",  # heartbeats resumed from a suspected/dead node
    "recovery.plan",  # coordinator planned re-placement of lost pods
    "recovery.deflected",  # arbiter contention changed a recovery target
    "recovery.failed",  # a lost pod could not be re-placed anywhere
    "region.assigned",  # a tenant was homed (or re-homed) in a region
    "region.epoch",  # one region finished its round: claims, handoffs
    "claim.batch",  # a region submitted its round's claim batch
    "claim.conflict",  # arbiter resolution found a cross-region race
    "handoff.requested",  # a region asked to migrate across the boundary
    "handoff.released",  # arbiter accepted; source region released
    "handoff.denied",  # arbiter ordering gave the target to another claim
    "handoff.admitted",  # destination region admitted the component
    "handoff.committed",  # handoff migration executed; ledger clean
    "handoff.aborted",  # destination could not admit (down/full/moved)
    "sweep.start",  # the sweep runner began fanning cells out
    "cell.done",  # one sweep cell executed (fresh result)
    "cell.cached",  # one sweep cell served from the result cache
    "cell.failed",  # one sweep cell raised in its worker
    "sweep.done",  # all cells settled; summary stats attached
    "slo.breach",  # a watchdog rule crossed its rolling-window ceiling
    "status.published",  # the status publisher snapshotted status.json
    "recovery.deferred",  # confirmation arrived while orchestrator down
    "orchestrator.suspended",  # control-plane process died (chaos kill)
    "orchestrator.resumed",  # control plane back; deferred work drains
)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded decision, causally linked to what triggered it."""

    id: int
    kind: str
    time: float
    app: Optional[str] = None
    epoch: Optional[int] = None
    cause: Optional[int] = None
    data: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """One-line JSON form (the JSONL trace-file record)."""
        record: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "t": self.time,
        }
        if self.app is not None:
            record["app"] = self.app
        if self.epoch is not None:
            record["epoch"] = self.epoch
        if self.cause is not None:
            record["cause"] = self.cause
        if self.data:
            record["data"] = self.data
        return json.dumps(record, sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        record = json.loads(line)
        return TraceEvent(
            id=int(record["id"]),
            kind=str(record["kind"]),
            time=float(record["t"]),
            app=record.get("app"),
            epoch=record.get("epoch"),
            cause=record.get("cause"),
            data=record.get("data", {}),
        )


class TracerBase:
    """Common interface of :class:`Tracer` and :class:`NullTracer`."""

    enabled: bool = False
    events: Iterable[TraceEvent] = ()

    def emit(
        self,
        kind: str,
        time: float,
        *,
        app: Optional[str] = None,
        epoch: Optional[int] = None,
        cause: Optional[int] = None,
        **data: Any,
    ) -> int:
        raise NotImplementedError

    def set_context(
        self, app: Optional[str] = None, epoch: Optional[int] = None
    ) -> None:
        raise NotImplementedError


class NullTracer(TracerBase):
    """Disabled tracer: every operation is a no-op.

    Instrumented code holds one of these by default, so tracing costs a
    single (false) attribute check per instrumented site when off.
    """

    enabled = False
    events: tuple[TraceEvent, ...] = ()

    def emit(
        self,
        kind: str,
        time: float,
        *,
        app: Optional[str] = None,
        epoch: Optional[int] = None,
        cause: Optional[int] = None,
        **data: Any,
    ) -> int:
        return 0

    def set_context(
        self, app: Optional[str] = None, epoch: Optional[int] = None
    ) -> None:
        pass

    def __reduce__(self):
        # Checkpoints must restore the *singleton*: instrumented code
        # compares against NULL_TRACER by identity in places, and a
        # fresh copy per unpickle would break that.
        return (_resolve_null_tracer, ())


#: The shared no-op tracer instrumented components default to.
NULL_TRACER = NullTracer()


def _resolve_null_tracer() -> NullTracer:
    return NULL_TRACER


class Tracer(TracerBase):
    """Recording tracer: an append-only, causally-linked event log.

    Two storage backends share one emit path:

    * **Buffered (default)** — every event is kept in :attr:`events`
      until :meth:`to_jsonl` exports them.  Simple, and right for the
      batch experiments whose traces fit comfortably in memory.
    * **Streaming** — with a ``sink``
      (:class:`~repro.obs.stream.StreamingSink`), events flush
      incrementally to rotating JSONL shards and only the sink's
      bounded ring buffer of recent events stays resident, so a
      10M-event always-on run holds O(window) memory.  :attr:`events`
      then exposes just that recent window; call :meth:`close` to
      publish the final shard.

    Args:
        instruments: optional object with an ``on_event(event)`` hook
            (see :class:`repro.obs.instruments.StandardInstruments`)
            that derives Prometheus-style metrics from the stream.
        sink: optional streaming backend; None keeps the buffered
            behaviour, byte-identical to all prior releases.
    """

    enabled = True

    def __init__(
        self,
        instruments: Optional[Any] = None,
        *,
        sink: "Optional[StreamingSink]" = None,
    ) -> None:
        self._events: list[TraceEvent] = []
        self._sink = sink
        self.instruments = instruments
        self._observers: list[Any] = []
        self._next_id = 1
        self._app: Optional[str] = None
        self._epoch: Optional[int] = None

    @classmethod
    def with_instruments(
        cls, *, sink: "Optional[StreamingSink]" = None
    ) -> "Tracer":
        """A tracer wired to a fresh standard instrument registry."""
        from .instruments import InstrumentRegistry, StandardInstruments

        return cls(
            instruments=StandardInstruments(InstrumentRegistry()), sink=sink
        )

    @property
    def events(self) -> list[TraceEvent]:
        """Recorded events: the full log (buffered) or the sink's
        bounded recent window (streaming)."""
        if self._sink is not None:
            return list(self._sink.recent)
        return self._events

    @property
    def sink(self) -> "Optional[StreamingSink]":
        return self._sink

    def add_observer(self, observer: Any) -> None:
        """Attach another ``on_event(event)`` consumer (rolling windows,
        SLO bookkeeping) fed after :attr:`instruments` on every emit."""
        self._observers.append(observer)

    # -- context -----------------------------------------------------------

    def set_context(
        self, app: Optional[str] = None, epoch: Optional[int] = None
    ) -> None:
        """Default ``app``/``epoch`` stamped on subsequent events.

        Controllers set this at the start of each phase so probe events
        fired deep inside the net-monitor are attributed to the tenant
        whose evaluation requested them.
        """
        self._app = app
        self._epoch = epoch

    # -- recording ---------------------------------------------------------

    def emit(
        self,
        kind: str,
        time: float,
        *,
        app: Optional[str] = None,
        epoch: Optional[int] = None,
        cause: Optional[int] = None,
        **data: Any,
    ) -> int:
        """Append an event; returns its id (use as a later ``cause``)."""
        event = TraceEvent(
            id=self._next_id,
            kind=kind,
            time=time,
            app=app if app is not None else self._app,
            epoch=epoch if epoch is not None else self._epoch,
            cause=cause if cause else None,
            data=data,
        )
        self._next_id += 1
        if self._sink is not None:
            self._sink.append(event)
        else:
            self._events.append(event)
        if self.instruments is not None:
            self.instruments.on_event(event)
        for observer in self._observers:
            observer.on_event(event)
        return event.id

    def __len__(self) -> int:
        """Total events emitted (not just the resident window)."""
        return self._next_id - 1

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    # -- export ------------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> Path:
        """Write the trace as one JSON object per line.

        The file is written to a same-directory temp file and published
        with an atomic rename, so a crash mid-export can never destroy
        an existing trace or leave a half-written one behind.

        Raises:
            ValueError: on a streaming tracer — its events are already
                on disk as shards; :meth:`close` publishes the last one.
        """
        if self._sink is not None:
            raise ValueError(
                "streaming tracer already writes shards; call close() "
                "and read the sink's directory instead of to_jsonl()"
            )
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w") as handle:
            for event in self._events:
                handle.write(event.to_json() + "\n")
        os.replace(tmp, path)
        return path

    def close(self) -> None:
        """Flush and publish the streaming sink's final shard (no-op
        for a buffered tracer)."""
        if self._sink is not None:
            self._sink.close()


def read_trace(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace written by :meth:`Tracer.to_jsonl`.

    ``path`` may also be a :class:`~repro.obs.stream.StreamingSink`
    directory, in which case the published shards are read in order —
    their concatenation is the full trace.

    A truncated or corrupt trailing line is the *normal* state of a
    trace from a crashed run, so malformed lines are skipped with a
    warning and the valid prefix is returned instead of raising.
    """
    path = Path(path)
    if path.is_dir():
        events: list[TraceEvent] = []
        for shard in sorted(path.glob("trace-*.jsonl")):
            events.extend(read_trace(shard))
        return events
    events = []
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(TraceEvent.from_json(line))
            except (ValueError, KeyError, TypeError):
                warnings.warn(
                    f"{path}:{number}: skipping malformed trace line "
                    f"(truncated write from a crashed run?)",
                    stacklevel=2,
                )
    return events


# -- process default ----------------------------------------------------------

_default_tracer: TracerBase = NULL_TRACER


def set_default_tracer(tracer: Optional[TracerBase]) -> TracerBase:
    """Install the process-default tracer; returns the previous one.

    The CLI's ``run --trace`` uses this so every experiment records
    without threading a tracer through each scenario's signature.
    """
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def current_tracer() -> TracerBase:
    """The process-default tracer (:data:`NULL_TRACER` unless set)."""
    return _default_tracer


def resolve_tracer(tracer: Optional[TracerBase]) -> TracerBase:
    """An explicit tracer if given, else the process default."""
    return tracer if tracer is not None else _default_tracer
