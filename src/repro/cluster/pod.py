"""Pod specifications.

A pod is one application component instance.  Besides the usual CPU and
memory requests, BASS pods carry *bandwidth annotations*: the maximum
bandwidth each dependency edge needs, gathered by offline profiling and
stored "in the metadata section of the application's deployment file"
(§5).  The default k3s scheduler ignores these annotations; the BASS
scheduler consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulingError
from .resources import ResourceSpec


@dataclass(frozen=True)
class PodSpec:
    """One deployable component instance.

    Attributes:
        name: component name, unique within the application.
        app: application name this pod belongs to.
        resources: CPU/memory request (hard constraint).
        bandwidth_mbps: bandwidth annotations — mapping from *downstream*
            component name to the required Mbps on that edge.
        pinned_node: optional node the pod must run on (used for
            client-side components that represent users at fixed mesh
            locations, e.g. conference participants at nodes 1–4).
    """

    name: str
    app: str
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    bandwidth_mbps: dict[str, float] = field(default_factory=dict, hash=False)
    pinned_node: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("pod name must be non-empty")
        if not self.app:
            raise SchedulingError(f"pod {self.name}: app must be non-empty")
        for dep, mbps in self.bandwidth_mbps.items():
            if mbps < 0:
                raise SchedulingError(
                    f"pod {self.name}: negative bandwidth to {dep!r}"
                )

    @property
    def uid(self) -> str:
        """Globally unique identifier: ``app/name``."""
        return f"{self.app}/{self.name}"

    def total_bandwidth_mbps(self) -> float:
        """Sum of annotated egress bandwidth across dependencies."""
        return sum(self.bandwidth_mbps.values())
