"""Perf harness for the fluid-model hot path (the fast-path core).

Every orchestrator signal is a query against :class:`NetworkEmulator`,
so its per-tick cost bounds how long a trace replay or churn sweep
takes.  This harness measures, across mesh sizes (5 -> 60 nodes) and
flow counts (10 -> 500):

* ticks/sec of the optimized tick loop (single capacity scan,
  fingerprint cache, indexed/vectorized allocator), and
* ticks/sec of a frozen copy of the seed implementation's tick path
  (double capacity scan + reference water-filling each tick), and
* solve-only time of the reference / indexed / vectorized allocators
  on the same instance.

Results are written to ``BENCH_emulator.json`` at the repo root (merged
per case, so the smoke run in CI refreshes its sizes without clobbering
the full sweep's) — the perf trajectory is tracked across PRs.  Both
loops run on identically seeded emulators and must end with *exactly*
equal allocations, so the speedup claim is never bought with drift.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.mesh.node import MeshNode
from repro.mesh.tracegen import citylab_link_trace
from repro.mesh.topology import MeshTopology
from repro.net.fairness import (
    FlowDemand,
    max_min_allocation,
    max_min_allocation_reference,
)
from repro.net.netem import NetworkEmulator

from _reporting import fmt, run_once, save_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_emulator.json"

#: (n_nodes, n_flows, n_ticks) — the sweep the acceptance criteria track.
SMOKE_CASES = [(5, 10, 300), (15, 50, 150)]
FULL_CASES = SMOKE_CASES + [(30, 200, 50), (60, 500, 30)]


def random_mesh(n_nodes: int, seed: int, *, trace_s: float) -> MeshTopology:
    """A connected random mesh: ring backbone plus seeded chords, every
    link driven by a CityLab-style bandwidth trace so capacities really
    change each tick (no fingerprint shortcuts for the solver)."""
    rng = np.random.default_rng(seed)
    topo = MeshTopology()
    names = [f"node{i}" for i in range(n_nodes)]
    for name in names:
        topo.add_node(MeshNode(name, cpu_cores=8, memory_mb=8192))
    pairs = [(names[i], names[(i + 1) % n_nodes]) for i in range(n_nodes)]
    n_chords = n_nodes // 2
    while len(pairs) < n_nodes + n_chords:
        a, b = rng.choice(n_nodes, size=2, replace=False)
        a, b = names[int(a)], names[int(b)]
        if not topo.has_link(a, b) and (a, b) not in pairs and (b, a) not in pairs:
            pairs.append((a, b))
    for a, b in pairs:
        mean = float(rng.uniform(8.0, 40.0))
        link = topo.add_link(a, b, capacity_mbps=mean)
        link.set_trace(
            citylab_link_trace(mean, trace_s, variability="moderate", rng=rng)
        )
    return topo


def add_random_flows(emu: NetworkEmulator, n_flows: int, seed: int) -> None:
    rng = np.random.default_rng(seed + 1)
    names = emu.topology.node_names
    for i in range(n_flows):
        src = names[int(rng.integers(0, len(names)))]
        if rng.random() < 0.05:
            dst = src  # loopback
        else:
            dst = names[int(rng.integers(0, len(names)))]
        emu.add_flow(f"f{i}", src, dst, float(rng.uniform(0.1, 15.0)))


def reference_tick(emu: NetworkEmulator) -> None:
    """A frozen copy of the seed tick path: capacity scan, queue
    advance, then a recompute that scans capacities *again* and solves
    with the reference allocator — no fingerprint, no incidence index."""
    capacities = emu._capacities_now()
    offered = {key: 0.0 for key in emu._queues}
    for flow in emu._flows.values():
        for key in flow.links:
            offered[key] += flow.demand_mbps
        emu._offered_mbit_by_tag[flow.tag] = (
            emu._offered_mbit_by_tag.get(flow.tag, 0.0)
            + flow.demand_mbps * emu.tick_s * max(len(flow.links), 0)
        )
    for key, queue in emu._queues.items():
        queue.update(emu.tick_s, offered[key], capacities[key])
    capacities = emu._capacities_now()  # the seed's double scan
    demands = [
        FlowDemand(flow_id=fid, links=flow.links, demand_mbps=flow.demand_mbps)
        for fid, flow in emu._flows.items()
    ]
    rates = max_min_allocation_reference(demands, capacities)
    for fid, flow in emu._flows.items():
        flow.allocated_mbps = rates.get(fid, 0.0)


def build_emulator(n_nodes: int, n_flows: int, n_ticks: int) -> NetworkEmulator:
    seed = 10_000 + n_nodes
    topo = random_mesh(n_nodes, seed, trace_s=float(n_ticks + 5))
    emu = NetworkEmulator(topo)
    add_random_flows(emu, n_flows, seed)
    return emu


def time_tick_loop(emu: NetworkEmulator, n_ticks: int, tick) -> float:
    """Drive ``tick`` through the engine for ``n_ticks`` steps; returns
    elapsed wall seconds (engine dispatch overhead included for both
    contenders)."""
    task = emu.engine.every(emu.tick_s, lambda: tick(emu))
    begin = time.perf_counter()
    emu.engine.run_until(n_ticks * emu.tick_s)
    elapsed = time.perf_counter() - begin
    task.stop()
    return elapsed


def solve_snapshot(emu: NetworkEmulator) -> tuple[list[FlowDemand], dict]:
    demands = [
        FlowDemand(flow_id=fid, links=flow.links, demand_mbps=flow.demand_mbps)
        for fid, flow in emu._flows.items()
    ]
    return demands, emu.capacities_now()


def time_solvers(emu: NetworkEmulator, *, repeats: int = 3) -> dict[str, float]:
    """Best-of-N solve-only wall time (ms) per allocator."""
    demands, capacities = solve_snapshot(emu)
    timings: dict[str, float] = {}
    contenders = {
        "reference": lambda: max_min_allocation_reference(demands, capacities),
        "indexed": lambda: max_min_allocation(
            demands, capacities, solver="indexed"
        ),
        "vectorized": lambda: max_min_allocation(
            demands, capacities, solver="vectorized"
        ),
    }
    for label, solve in contenders.items():
        best = float("inf")
        for _ in range(repeats):
            begin = time.perf_counter()
            solve()
            best = min(best, time.perf_counter() - begin)
        timings[label] = best * 1000.0
    return timings


def run_case(n_nodes: int, n_flows: int, n_ticks: int) -> dict:
    fast = build_emulator(n_nodes, n_flows, n_ticks)
    ref = build_emulator(n_nodes, n_flows, n_ticks)

    fast_s = time_tick_loop(fast, n_ticks, lambda emu: emu.tick())
    ref_s = time_tick_loop(ref, n_ticks, reference_tick)

    # Identically seeded runs must land on exactly equal allocations —
    # the speedup is only valid if the fast path stayed bit-compatible.
    fast_alloc = {f.flow_id: f.allocated_mbps for f in fast.flows}
    ref_alloc = {f.flow_id: f.allocated_mbps for f in ref.flows}
    assert fast_alloc == ref_alloc, "fast path diverged from reference"

    solve_ms = time_solvers(fast)
    return {
        "nodes": n_nodes,
        "flows": n_flows,
        "ticks": n_ticks,
        "fast_ticks_per_s": n_ticks / fast_s,
        "reference_ticks_per_s": n_ticks / ref_s,
        "tick_speedup": ref_s / fast_s,
        "solve_ms": solve_ms,
        "solver_speedup_vectorized": (
            solve_ms["reference"] / solve_ms["vectorized"]
            if solve_ms["vectorized"] > 0
            else float("inf")
        ),
    }


def persist(results: dict[str, dict]) -> None:
    """Merge the measured cases into BENCH_emulator.json (smoke runs
    refresh their sizes without dropping the full sweep's entries)."""
    payload = {"schema": 1, "unit_note": "ticks_per_s higher is better", "cases": {}}
    if BENCH_PATH.exists():
        try:
            previous = json.loads(BENCH_PATH.read_text())
            payload["cases"] = previous.get("cases", {})
        except (json.JSONDecodeError, OSError):
            pass
    payload["cases"].update(results)
    payload["cases"] = dict(sorted(payload["cases"].items()))
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def run_suite(cases) -> dict[str, dict]:
    results = {}
    for n_nodes, n_flows, n_ticks in cases:
        results[f"n{n_nodes:03d}_f{n_flows:03d}"] = run_case(
            n_nodes, n_flows, n_ticks
        )
    return results


def report(results: dict[str, dict], name: str) -> None:
    save_table(
        name,
        [
            "nodes",
            "flows",
            "fast_ticks_per_s",
            "ref_ticks_per_s",
            "tick_speedup",
            "solve_ref_ms",
            "solve_indexed_ms",
            "solve_vector_ms",
        ],
        [
            [
                row["nodes"],
                row["flows"],
                fmt(row["fast_ticks_per_s"], 1),
                fmt(row["reference_ticks_per_s"], 1),
                fmt(row["tick_speedup"], 2),
                fmt(row["solve_ms"]["reference"], 3),
                fmt(row["solve_ms"]["indexed"], 3),
                fmt(row["solve_ms"]["vectorized"], 3),
            ]
            for row in results.values()
        ],
        note="traced random meshes; both tick loops engine-driven and "
        "bit-identical by assertion; BENCH_emulator.json tracks the series",
    )


@pytest.mark.benchmark(group="perf_emulator")
def test_perf_emulator_smoke(benchmark):
    """CI fast path: small sizes only, sanity-checks the fast path wins."""
    results = run_once(benchmark, lambda: run_suite(SMOKE_CASES))
    persist(results)
    report(results, "perf_emulator_smoke")
    for row in results.values():
        assert row["fast_ticks_per_s"] > 0
        # The fast path must never lose to the frozen reference by more
        # than timer noise, even at trivial sizes.
        assert row["tick_speedup"] > 0.8


@pytest.mark.slow
@pytest.mark.benchmark(group="perf_emulator")
def test_perf_emulator_full_sweep(benchmark):
    """The tracked sweep: >=4 mesh sizes, and the large-instance tick
    loop must hold a >=3x speedup over the frozen reference path."""
    results = run_once(benchmark, lambda: run_suite(FULL_CASES))
    persist(results)
    report(results, "perf_emulator")
    largest = results[max(results)]
    assert largest["nodes"] == 60 and largest["flows"] == 500
    assert largest["tick_speedup"] >= 3.0, (
        f"large-instance speedup {largest['tick_speedup']:.2f}x < 3x"
    )
