"""Unit tests for trace CSV I/O and the widest-path routing strategy."""

import pytest

from repro.errors import RoutingError, TopologyError, TraceError
from repro.mesh.node import MeshNode
from repro.mesh.routing import Router
from repro.mesh.topology import MeshTopology
from repro.mesh.traces import BandwidthTrace


class TestTraceCsv:
    def test_roundtrip(self, tmp_path):
        original = BandwidthTrace([0, 10, 20], [5.0, 8.0, 3.0])
        path = tmp_path / "trace.csv"
        original.to_csv(path)
        loaded = BandwidthTrace.from_csv(path)
        assert (loaded.times == original.times).all()
        assert (loaded.values == original.values).all()

    def test_header_row_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time_s,mbps\n0,5.0\n10,2.5\n")
        trace = BandwidthTrace.from_csv(path)
        assert trace.value_at(0.0) == 5.0
        assert trace.value_at(10.0) == 2.5

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,5.0\n\n10,2.5\n")
        assert BandwidthTrace.from_csv(path).value_at(10.0) == 2.5

    def test_unsorted_rows_sorted(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("10,2.5\n0,5.0\n")
        assert BandwidthTrace.from_csv(path).value_at(0.0) == 5.0

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("time_s,mbps\n")
        with pytest.raises(TraceError):
            BandwidthTrace.from_csv(path)

    def test_malformed_row_mid_file_raises(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,5.0\nbroken\n")
        with pytest.raises(TraceError):
            BandwidthTrace.from_csv(path)

    def test_loaded_trace_drives_a_link(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("0,9.0\n30,1.5\n")
        topo = MeshTopology()
        topo.add_node(MeshNode("a"))
        topo.add_node(MeshNode("b"))
        link = topo.add_link("a", "b", capacity_mbps=100.0)
        link.set_trace(BandwidthTrace.from_csv(path))
        assert topo.capacity("a", "b", 0.0) == 9.0
        assert topo.capacity("a", "b", 35.0) == 1.5


def widest_test_topology() -> MeshTopology:
    """a-b-d is short but thin; a-c-e-d is long but fat."""
    topo = MeshTopology()
    for name in "abcde":
        topo.add_node(MeshNode(name))
    topo.add_link("a", "b", capacity_mbps=2.0)
    topo.add_link("b", "d", capacity_mbps=2.0)
    topo.add_link("a", "c", capacity_mbps=50.0)
    topo.add_link("c", "e", capacity_mbps=50.0)
    topo.add_link("e", "d", capacity_mbps=50.0)
    return topo


class TestWidestPathRouting:
    def test_min_hop_takes_the_thin_shortcut(self):
        router = Router(widest_test_topology(), strategy="min_hop")
        assert router.traceroute("a", "d") == ("a", "b", "d")

    def test_widest_takes_the_fat_detour(self):
        router = Router(widest_test_topology(), strategy="widest")
        assert router.traceroute("a", "d") == ("a", "c", "e", "d")
        assert router.bottleneck_bandwidth("a", "d", 0.0) == 50.0

    def test_widest_prefers_fewer_hops_at_equal_width(self):
        topo = MeshTopology()
        for name in "abc":
            topo.add_node(MeshNode(name))
        topo.add_link("a", "b", capacity_mbps=10.0)
        topo.add_link("b", "c", capacity_mbps=10.0)
        topo.add_link("a", "c", capacity_mbps=10.0)
        router = Router(topo, strategy="widest")
        assert router.traceroute("a", "c") == ("a", "c")

    def test_widest_uses_base_capacity_not_live(self):
        """Route choice must not flap with transient shaping."""
        topo = widest_test_topology()
        topo.link("a", "c").set_rate_limit(0.1)  # transient squeeze
        router = Router(topo, strategy="widest")
        assert router.traceroute("a", "d") == ("a", "c", "e", "d")

    def test_widest_partition_raises(self):
        topo = widest_test_topology()
        topo.add_node(MeshNode("island"))
        router = Router(topo, strategy="widest")
        with pytest.raises(RoutingError):
            router.traceroute("a", "island")

    def test_unknown_strategy_raises(self):
        with pytest.raises(TopologyError):
            Router(widest_test_topology(), strategy="quantum")

    def test_emulator_accepts_custom_router(self):
        from repro.net.netem import NetworkEmulator

        topo = widest_test_topology()
        emu = NetworkEmulator(topo, router=Router(topo, strategy="widest"))
        flow = emu.add_flow("f", "a", "d", 20.0)
        assert flow.path == ("a", "c", "e", "d")
        emu.recompute()
        assert flow.allocated_mbps == pytest.approx(20.0)
