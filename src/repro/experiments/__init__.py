"""Experiment scenario builders.

One module per group of paper experiments; each function returns plain
data (rows / series) that the benchmark harness prints and asserts on,
and the examples visualize.  See DESIGN.md §4 for the experiment index.
"""

from .ablations import (
    ablate_cooldown,
    ablate_headroom_probing,
    ablate_hybrid_heuristic,
    ablate_online_profiling,
    ablate_routing_strategy,
    ablate_stability_guards,
)
from .common import AppHandle, ExperimentEnv, build_env, deploy_app, run_timeline
from .migration import (
    fig8_migration_timeline,
    fig12_video_query_interval,
    fig13_socialnet_migration,
    fig14a_restart_cdf,
    fig14b_scheduler_cdf,
    fig15b_video_thresholds,
    table1_migration_iterations,
)
from .motivation import (
    fig2_bandwidth_variation,
    fig4_pion_bottleneck,
    fig5_socialnet_throttle,
)
from .multi_tenant import (
    MultiTenantResult,
    StreamPairApp,
    multi_tenant_contention,
    multi_tenant_mesh,
)
from .overheads import (
    probing_overhead,
    table3_scheduling_latency,
    table4_dag_processing,
)
from .static_placement import (
    fig10_camera_static,
    fig11_socialnet_p99,
    table2_camera_mesh,
)
from .thresholds import fig14cd_threshold_sweep, fig16_exponential_thresholds

__all__ = [
    "AppHandle",
    "ExperimentEnv",
    "MultiTenantResult",
    "StreamPairApp",
    "ablate_cooldown",
    "ablate_headroom_probing",
    "ablate_hybrid_heuristic",
    "ablate_online_profiling",
    "ablate_routing_strategy",
    "ablate_stability_guards",
    "build_env",
    "deploy_app",
    "fig2_bandwidth_variation",
    "fig4_pion_bottleneck",
    "fig5_socialnet_throttle",
    "fig8_migration_timeline",
    "fig10_camera_static",
    "fig11_socialnet_p99",
    "fig12_video_query_interval",
    "fig13_socialnet_migration",
    "fig14a_restart_cdf",
    "fig14b_scheduler_cdf",
    "fig14cd_threshold_sweep",
    "fig15b_video_thresholds",
    "fig16_exponential_thresholds",
    "multi_tenant_contention",
    "multi_tenant_mesh",
    "probing_overhead",
    "run_timeline",
    "table1_migration_iterations",
    "table2_camera_mesh",
    "table3_scheduling_latency",
    "table4_dag_processing",
]
