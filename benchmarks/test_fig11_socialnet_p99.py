"""Fig 11: social-network p99 latency vs request rate, with and without
one node throttled to 25 Mbps.

Paper: with no restriction the longest-path and k3s tails are
comparable; with the restriction, k3s is about two orders of magnitude
worse at 200–300 RPS.
"""

import pytest

from repro.experiments.static_placement import fig11_socialnet_p99

from _reporting import fmt, run_once, save_table


@pytest.mark.benchmark(group="fig11")
def test_fig11_socialnet_p99(benchmark):
    cells = run_once(
        benchmark,
        fig11_socialnet_p99,
        rates=(100.0, 200.0, 300.0),
        duration_s=120.0,
    )
    save_table(
        "fig11_socialnet_p99",
        ["scheduler", "rps", "restricted", "p99_s", "mean_s"],
        [
            [
                c.scheduler,
                int(c.rps),
                c.restricted,
                fmt(c.p99_latency_s),
                fmt(c.mean_latency_s),
            ]
            for c in cells
        ],
    )

    def cell(scheduler, rps, restricted):
        return next(
            c
            for c in cells
            if c.scheduler == scheduler
            and c.rps == rps
            and c.restricted == restricted
        )

    # Unrestricted: tails comparable (within a small factor).
    for rps in (100.0, 200.0, 300.0):
        lp = cell("bass-longest-path", rps, False).p99_latency_s
        k3s = cell("k3s", rps, False).p99_latency_s
        assert k3s < 10 * lp

    # Restricted at high rates: k3s collapses, longest-path does not.
    for rps in (200.0, 300.0):
        lp = cell("bass-longest-path", rps, True).p99_latency_s
        k3s = cell("k3s", rps, True).p99_latency_s
        assert k3s > 10 * lp

    # The longest-path tail is essentially unaffected by the throttle.
    for rps in (100.0, 200.0, 300.0):
        unrestricted = cell("bass-longest-path", rps, False).p99_latency_s
        restricted = cell("bass-longest-path", rps, True).p99_latency_s
        assert restricted < 3 * unrestricted
