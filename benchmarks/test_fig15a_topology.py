"""Fig 15(a): the 5-node CityLab-subset topology.

This figure is the *input* to every emulated-mesh experiment rather
than a measured result; the bench renders the topology table (nodes,
cores, link means) and asserts its structural properties — the
wireless links are bidirectional with similar bandwidth in both
directions, resources are heterogeneous, and the mesh is connected.
"""

import pytest

from repro.mesh.topology import CITYLAB_LINK_MEANS, citylab_subset

from _reporting import fmt, run_once, save_table


@pytest.mark.benchmark(group="fig15a")
def test_fig15a_topology(benchmark):
    topology = run_once(benchmark, citylab_subset, with_traces=False)
    save_table(
        "fig15a_topology",
        ["link", "mean_mbps", "", "node", "cores", "memory_mb"],
        [
            [
                f"{a}-{b}",
                fmt(mean, 1),
                "",
                node.name,
                node.cpu_cores,
                int(node.memory_mb),
            ]
            for ((a, b), mean), node in zip(
                sorted(CITYLAB_LINK_MEANS.items()),
                sorted(topology.nodes, key=lambda n: n.name),
            )
        ],
        note="link means are plausible stand-ins for Fig 15a's "
        "unreadable printed values (DESIGN.md); node3-node4 is the "
        "25 Mbps link of Fig 8",
    )
    # Structure: 4 heterogeneous workers + control node, connected mesh.
    assert set(topology.worker_names) == {"node1", "node2", "node3", "node4"}
    assert not topology.node("node0").schedulable
    assert topology.is_connected()
    # Heterogeneous compute (§6.3: 12- and 8-core VMs, 8 GB RAM).
    cores = {topology.node(n).cpu_cores for n in topology.worker_names}
    assert cores == {12, 8}
    # Bidirectional links with equal capacity both ways (Fig 15a).
    for (a, b), mean in CITYLAB_LINK_MEANS.items():
        assert topology.capacity(a, b, 0.0) == mean
        assert topology.capacity(b, a, 0.0) == mean
    # The Fig 8 link is present at 25 Mbps.
    assert topology.capacity("node3", "node4", 0.0) == 25.0
