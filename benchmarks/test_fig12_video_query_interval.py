"""Fig 12: video-conference bitrate under different bandwidth-query
intervals during a 3-minute throttle.

Paper: with 30 s evaluation the violation is soon discovered and the
SFU migrates to the unaffected node (a ~30 s stream disruption); with
no migration the clients sit at the degraded bitrate for the whole
restriction.
"""

import pytest

from repro.experiments.migration import fig12_video_query_interval

from _reporting import fmt, run_once, save_table


@pytest.mark.benchmark(group="fig12")
def test_fig12_video_query_interval(benchmark):
    restrict_at, restrict_for = 10.0, 180.0
    series = run_once(
        benchmark,
        fig12_video_query_interval,
        intervals=(30.0, 60.0, 90.0, None),
        restrict_at_s=restrict_at,
        restrict_for_s=restrict_for,
        total_s=300.0,
    )
    window_end = restrict_at + restrict_for
    save_table(
        "fig12_video_query_interval",
        ["interval_s", "migrations", "first_migration_s",
         "mean_mbps_during_restriction", "mean_mbps_last_minute"],
        [
            [
                s.interval_s if s.interval_s is not None else "none",
                len(s.migrations),
                fmt(s.migrations[0].time, 0) if s.migrations else "-",
                fmt(s.mean_during(restrict_at, window_end)),
                fmt(s.mean_during(window_end, 300.0)),
            ]
            for s in series
        ],
    )
    by_interval = {s.interval_s: s for s in series}
    no_mig = by_interval[None]
    fast = by_interval[30.0]

    # Every migrating config discovers the violation and moves the SFU;
    # the no-migration baseline never does.
    for interval in (30.0, 60.0, 90.0):
        assert by_interval[interval].migrations
    assert not no_mig.migrations

    # The 30 s interval reacts first.
    assert fast.migrations[0].time <= by_interval[60.0].migrations[0].time
    assert fast.migrations[0].time <= by_interval[90.0].migrations[0].time

    # During the restriction, migrating recovers bitrate; not migrating
    # leaves clients degraded the whole window.
    assert fast.mean_during(restrict_at, window_end) > 1.5 * no_mig.mean_during(
        restrict_at, window_end
    )

    # After the restriction lifts, everyone is back to full bitrate.
    assert no_mig.mean_during(window_end + 10, 300.0) == pytest.approx(
        3.0, rel=0.05
    )
