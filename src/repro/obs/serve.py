"""Live status plane: ``/metrics``, ``/v1/status``, ``/v1/epoch`` over
a ticking run.

``bass-repro serve`` turns a batch scenario into a service in the style
of the mesh-controller architecture (SNIPPETS.md snippet 1): a stdlib
:class:`http.server.ThreadingHTTPServer` answers scrapes on a
background thread while the simulation ticks on the main thread, the
two serialized by one lock.  The endpoints:

=============  ===========================================================
``/metrics``   Prometheus/OpenMetrics text: every instrument plus the
               rolling-window and tick-profile gauges
               (:mod:`repro.obs.exposition`).
``/v1/status`` The status publisher's latest ``status.json`` document
               (:mod:`repro.obs.status`), fresh-rendered before the
               first publish.
``/v1/epoch``  Controller epoch, simulation time, status revision.
``/health``    Liveness probe.
=============  ===========================================================

Everything here is opt-in plumbing around unmodified experiments: the
scenarios are the same :func:`~repro.experiments.churn.prepare_churn` /
:func:`~repro.experiments.migration.prepare_fig13_cell` substrates the
batch paths drive, so a served run makes the same decisions a batch run
would.
"""

from __future__ import annotations

import json
import signal
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Optional, Sequence

from .exposition import (
    CONTENT_TYPE,
    RollingWindows,
    render_openmetrics,
    tick_profile_samples,
)
from .instruments import InstrumentRegistry
from .slo import DEFAULT_SLO_RULES, SloRule, SloWatchdog
from .status import StatusPublisher
from .stream import StreamingSink
from .trace import Tracer, set_default_tracer

#: Scenario names ``bass-repro serve`` accepts.
SCENARIOS = ("fig13", "churn")

_EPSILON = 1e-9


@dataclass
class StatusPlane:
    """The wired observability bundle behind one served run."""

    tracer: Tracer
    registry: InstrumentRegistry
    windows: RollingWindows
    watchdog: SloWatchdog
    publisher: StatusPublisher


def attach_status_plane(
    control_plane,
    tracer: Tracer,
    *,
    status_path: str | Path = "status.json",
    every_k_epochs: int = 5,
    window_s: float = 300.0,
    rules: Sequence[SloRule] = DEFAULT_SLO_RULES,
) -> StatusPlane:
    """Wire rolling windows, SLO watchdogs, and the status publisher
    onto a control plane (the opt-in that turns batch into live)."""
    windows = RollingWindows(window_s)
    tracer.add_observer(windows)
    watchdog = SloWatchdog(tuple(rules), windows, tracer)
    publisher = StatusPublisher(
        control_plane,
        status_path,
        every_k_epochs=every_k_epochs,
        windows=windows,
        watchdog=watchdog,
        tracer=tracer,
    )
    control_plane.attach_status(publisher)
    registry = (
        tracer.instruments.registry
        if tracer.instruments is not None
        else InstrumentRegistry()
    )
    return StatusPlane(
        tracer=tracer,
        registry=registry,
        windows=windows,
        watchdog=watchdog,
        publisher=publisher,
    )


@dataclass
class LiveScenario:
    """A prepared substrate plus the timeline a served run drives."""

    name: str
    env: object  # repro.experiments.common.ExperimentEnv
    duration_s: float
    events: tuple[tuple[float, Callable[[], None]], ...] = ()
    on_tick: Optional[Callable[[float], None]] = None
    tick_s: float = 1.0


def build_scenario(name: str, *, quick: bool = False) -> LiveScenario:
    """Assemble a servable scenario (the process-default tracer is
    picked up by ``build_env`` inside, exactly as ``run --trace``)."""
    if name == "churn":
        from ..config import BassConfig
        from ..experiments.churn import prepare_churn

        # The batch churn experiment freezes migrations to isolate
        # recovery; the live scenario keeps them on so headroom probes
        # feed the rolling windows every epoch.
        prepared = prepare_churn(config=BassConfig())
        return LiveScenario(
            name="churn",
            env=prepared.env,
            duration_s=150.0 if quick else 240.0,
            on_tick=prepared.sample,
        )
    if name == "fig13":
        from ..experiments.migration import prepare_fig13_cell

        cell = prepare_fig13_cell(30.0)
        restrict_at_s = 10.0
        restrict_for_s = 60.0 if quick else 180.0
        return LiveScenario(
            name="fig13",
            env=cell.env,
            duration_s=120.0 if quick else 300.0,
            events=(
                (restrict_at_s, cell.throttle),
                (restrict_at_s + restrict_for_s, cell.unthrottle),
            ),
        )
    raise ValueError(
        f"unknown serve scenario {name!r} (expected one of {SCENARIOS})"
    )


class LiveRun:
    """One scenario ticking under the status plane.

    The HTTP thread and the stepping thread share :attr:`lock`: every
    endpoint renders under it, and :meth:`step` advances the clock
    under it, so scrapes always observe a consistent simulation state.

    Internally the run is a :class:`~repro.snap.capsule.RunCapsule` —
    the picklable root object the checkpoint subsystem serializes — so
    a served run can be snapshotted on SIGTERM and resumed by a fresh
    ``bass-repro serve --checkpoint-dir`` process.
    """

    def __init__(
        self, scenario: LiveScenario, plane: StatusPlane, *, capsule=None
    ) -> None:
        from ..snap.capsule import RunCapsule

        self.scenario = scenario
        self.plane = plane
        self.capsule = (
            capsule
            if capsule is not None
            else RunCapsule(
                scenario=scenario.name,
                env=scenario.env,
                duration_s=scenario.duration_s,
                tick_s=scenario.tick_s,
                on_tick=scenario.on_tick,
                events=tuple(scenario.events),
            )
        )
        self.lock = threading.Lock()

    @classmethod
    def from_capsule(cls, capsule, plane: StatusPlane) -> "LiveRun":
        """Wrap a capsule restored from a checkpoint (mid-run: its heap
        already carries the armed ticker and timeline events)."""
        scenario = LiveScenario(
            name=capsule.scenario,
            env=capsule.env,
            duration_s=capsule.duration_s,
            events=tuple(capsule.events),
            on_tick=capsule.on_tick,
            tick_s=capsule.tick_s,
        )
        return cls(scenario, plane, capsule=capsule)

    @property
    def env(self):
        return self.capsule.env

    @property
    def engine(self):
        return self.capsule.env.engine

    @property
    def control_plane(self):
        return self.capsule.env.control_plane

    @property
    def done(self) -> bool:
        return self.capsule.done

    def start(self) -> None:
        """Arm the emulator, tick observer, and timeline events — the
        same order as ``run_timeline``, so decisions match batch.  A
        no-op on a restored capsule (everything is already armed)."""
        self.capsule.start()

    def step(self, sim_seconds: float) -> float:
        """Advance the clock by up to ``sim_seconds``; returns now."""
        with self.lock:
            return self.capsule.run_until(self.engine.now + sim_seconds)

    def finish(self, *, policy=None, checkpoint: bool = False):
        """Publish one final status snapshot, optionally write a final
        checkpoint, and seal the trace — in that order, so the snapshot
        captures the bumped status revision and the still-open trace
        shard (a restore resumes appending to it; the seal that follows
        makes the on-disk trace complete even if nobody ever resumes).

        Returns the final checkpoint's path, or None."""
        with self.lock:
            self.plane.publisher.publish(
                self.engine.now, self.control_plane.epoch_count
            )
            path = None
            if checkpoint and policy is not None:
                path = policy.write(
                    label=f"final-t{int(self.engine.now):06d}"
                )
            self.plane.tracer.close()
            return path


def resume_status_plane(
    capsule, *, status_path: str | Path
) -> StatusPlane:
    """Rebuild the :class:`StatusPlane` around a restored capsule.

    A serve-written checkpoint pickles the whole plane — publisher
    (with its monotonic revision), rolling windows, watchdog, tracer —
    inside the capsule's object graph; this just re-collects the
    references and re-points the publisher at this process's status
    path.  The revision keeps counting from where the killed process
    left off.
    """
    publisher = capsule.control_plane.status
    if publisher is None:
        raise ValueError(
            "checkpoint has no status plane attached — it was written "
            "by 'bass-repro run', not 'bass-repro serve'; restore it "
            "with 'bass-repro run --restore-from' instead"
        )
    publisher.path = Path(status_path)
    tracer = capsule.env.tracer
    registry = (
        tracer.instruments.registry
        if getattr(tracer, "instruments", None) is not None
        else InstrumentRegistry()
    )
    return StatusPlane(
        tracer=tracer,
        registry=registry,
        windows=publisher.windows,
        watchdog=publisher.watchdog,
        publisher=publisher,
    )


class _Handler(BaseHTTPRequestHandler):
    server_version = "bass-repro-serve"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes stay off the experiment's stdout

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        live: LiveRun = self.server.live  # type: ignore[attr-defined]
        plane = live.plane
        path = self.path.split("?", 1)[0]
        with live.lock:
            now = live.engine.now
            if path == "/metrics":
                # Tick-phase/solver numbers ride along as transient
                # gauges read off the emulator at scrape time — they
                # never touch pickled registry state, so checkpoint
                # payloads stay independent of scrape timing.
                netem = getattr(live.env, "netem", None)
                extra = (
                    tick_profile_samples(
                        netem.tick_phase_stats(), netem.solver_stats()
                    )
                    if netem is not None
                    else None
                )
                body = render_openmetrics(
                    plane.registry,
                    plane.windows,
                    now=now,
                    extra_samples=extra,
                ).encode()
                content_type = CONTENT_TYPE
            elif path == "/v1/status":
                document = plane.publisher.last_snapshot
                if document is None:
                    document = plane.publisher.snapshot(
                        now, live.control_plane.epoch_count
                    )
                body = (
                    json.dumps(document, indent=2, sort_keys=True) + "\n"
                ).encode()
                content_type = "application/json"
            elif path == "/v1/epoch":
                body = (
                    json.dumps(
                        {
                            "epoch": live.control_plane.epoch_count,
                            "sim_time_s": now,
                            "revision": plane.publisher.revision,
                            "done": live.done,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                ).encode()
                content_type = "application/json"
            elif path == "/health":
                body = b'{"ok": true}\n'
                content_type = "application/json"
            else:
                self.send_error(404, "unknown endpoint")
                return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class LiveStatusServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`LiveRun`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], live: LiveRun) -> None:
        super().__init__(address, _Handler)
        self.live = live
        self.thread: Optional[threading.Thread] = None


def start_server(
    live: LiveRun, *, host: str = "127.0.0.1", port: int = 0
) -> LiveStatusServer:
    """Serve the run's endpoints on a daemon thread (port 0: ephemeral)."""
    server = LiveStatusServer((host, port), live)
    thread = threading.Thread(
        target=server.serve_forever, name="bass-status-http", daemon=True
    )
    thread.start()
    server.thread = thread
    return server


@dataclass
class ServeOptions:
    """Knobs for :func:`serve_run` (mirrors the CLI flags)."""

    scenario: str = "fig13"
    host: str = "127.0.0.1"
    port: int = 8791
    quick: bool = False
    duration_s: Optional[float] = None  # None: the scenario default
    pace: float = 0.0  # sim seconds per wall second; 0 = unpaced
    step_s: float = 5.0  # sim seconds per stepping-loop iteration
    status_path: str = "status.json"
    status_every: int = 5  # publish every k controller epochs
    stream_dir: Optional[str] = None  # streaming trace shards
    window_s: float = 300.0
    rules: tuple[SloRule, ...] = field(default=DEFAULT_SLO_RULES)
    linger: bool = True  # keep serving after the run until signalled
    #: Checkpoint directory: periodic snapshots every
    #: ``checkpoint_every`` epochs plus a final one on SIGTERM; if the
    #: directory already holds a checkpoint, the server resumes from it
    #: instead of starting the scenario fresh.
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 5


def serve_run(options: ServeOptions) -> int:
    """The ``bass-repro serve`` entry point: tick a scenario to its
    horizon while serving the status plane; afterwards keep serving
    until SIGINT/SIGTERM, then shut down cleanly.

    With ``checkpoint_dir``, the run writes periodic snapshots and a
    final one on SIGTERM (after publishing status, before sealing the
    trace shard), and a later ``serve --checkpoint-dir`` on the same
    directory resumes the killed run — same status revision counter,
    same trace shard, same decisions as if never interrupted.
    """
    resume_from = None
    if options.checkpoint_dir is not None:
        from ..snap import latest_checkpoint

        resume_from = latest_checkpoint(options.checkpoint_dir)

    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ANN001 - signal signature
        stop.set()

    original_handlers = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    server: Optional[LiveStatusServer] = None
    previous = None
    try:
        if resume_from is not None:
            from ..snap import read_snapshot

            meta, capsule = read_snapshot(resume_from)
            tracer = capsule.env.tracer
            previous = set_default_tracer(tracer)
            plane = resume_status_plane(
                capsule, status_path=options.status_path
            )
            live = LiveRun.from_capsule(capsule, plane)
            print(
                f"resuming {capsule.scenario} from {resume_from} at "
                f"t={meta.sim_time_s:.0f}s (epoch "
                f"{live.control_plane.epoch_count}, status revision "
                f"{plane.publisher.revision})"
            )
        else:
            sink = (
                StreamingSink(options.stream_dir)
                if options.stream_dir is not None
                else None
            )
            tracer = Tracer.with_instruments(sink=sink)
            previous = set_default_tracer(tracer)
            scenario = build_scenario(options.scenario, quick=options.quick)
            if options.duration_s is not None:
                scenario.duration_s = options.duration_s
            plane = attach_status_plane(
                scenario.env.control_plane,
                tracer,
                status_path=options.status_path,
                every_k_epochs=options.status_every,
                window_s=options.window_s,
                rules=options.rules,
            )
            live = LiveRun(scenario, plane)

        policy = live.control_plane.checkpoints
        if options.checkpoint_dir is not None:
            from pathlib import Path as _Path

            from ..snap import CheckpointPolicy

            if policy is None:
                policy = CheckpointPolicy(
                    options.checkpoint_dir,
                    every_k_epochs=options.checkpoint_every,
                )
                policy.bind(live.capsule)
                live.control_plane.attach_checkpoints(policy)
            else:
                # Keep the pickled cadence (it shapes the event heap);
                # only re-point the directory at this invocation's.
                policy.directory = _Path(options.checkpoint_dir)

        server = start_server(live, host=options.host, port=options.port)
        host, port = server.server_address[:2]
        print(
            f"serving {live.scenario.name} on http://{host}:{port} "
            f"(/metrics /v1/status /v1/epoch), horizon "
            f"{live.scenario.duration_s:.0f}s sim"
        )
        live.start()
        while not stop.is_set() and not live.done:
            live.step(options.step_s)
            if options.pace > 0:
                stop.wait(options.step_s / options.pace)
        interrupted = not live.done
        final = live.finish(policy=policy, checkpoint=interrupted)
        if final is not None:
            print(
                f"interrupted at t={live.engine.now:.0f}s; checkpoint "
                f"-> {final} (resume with: bass-repro serve "
                f"--checkpoint-dir {options.checkpoint_dir})"
            )
        else:
            print(
                f"run complete at t={live.engine.now:.0f}s "
                f"({live.control_plane.epoch_count} epochs, "
                f"status revision {plane.publisher.revision})"
            )
        if options.linger and not interrupted:
            print("serving until SIGINT/SIGTERM ...")
            while not stop.is_set():
                stop.wait(0.2)
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if previous is not None:
            set_default_tracer(previous)
        for sig, handler in original_handlers.items():
            signal.signal(sig, handler)
    return 0
