"""Orchestrator-kill chaos: suspend semantics, deferred recoveries,
and the drain-on-resume path the failover experiment measures."""

import pytest

from repro.config import BassConfig
from repro.errors import SimulationError
from repro.experiments.common import build_env, deploy_app, run_timeline
from repro.experiments.multi_tenant import SINK, StreamPairApp
from repro.faults import (
    FailureDetector,
    FaultInjector,
    FaultPlan,
    HeartbeatConfig,
    NodeCrash,
    OrchestratorKill,
)
from repro.mesh.topology import full_mesh_topology
from repro.obs.trace import Tracer

CONFIG = HeartbeatConfig(
    interval_s=5.0, suspect_after_misses=2, confirm_after_misses=4
)
NO_MIGRATIONS = BassConfig(migrations_enabled=False)


def wire_failover(env, *, crash_at_s=30.0, kill_at_s=20.0, down_s=45.0):
    """node2 crashes while the orchestrator itself is down."""
    plan = FaultPlan(
        [
            NodeCrash(at_s=crash_at_s, node="node2"),
            OrchestratorKill(at_s=kill_at_s, down_s=down_s),
        ]
    )
    injector = FaultInjector(
        plan, env.netem, tracer=env.tracer, control_plane=env.control_plane
    )
    injector.install()
    detector = FailureDetector(
        env.netem, "node1", config=CONFIG, injector=injector,
        tracer=env.tracer,
    )
    detector.start()
    coordinator = env.control_plane.enable_recovery(detector)
    return injector, coordinator


class TestPlanValidation:
    def test_down_s_must_be_positive(self):
        topology = full_mesh_topology(3)
        for down_s in (0.0, -5.0):
            plan = FaultPlan([OrchestratorKill(at_s=10.0, down_s=down_s)])
            with pytest.raises(SimulationError, match="down_s"):
                plan.validate(topology)

    def test_install_requires_a_control_plane(self):
        env = build_env(full_mesh_topology(3), seed=5, with_traces=False)
        plan = FaultPlan([OrchestratorKill(at_s=10.0, down_s=5.0)])
        injector = FaultInjector(plan, env.netem, tracer=env.tracer)
        with pytest.raises(SimulationError, match="control_plane"):
            injector.install()


class TestSuspendResume:
    def test_recovery_deferred_until_resume(self):
        """A crash confirmed during the outage produces no action until
        the orchestrator resumes, then drains immediately."""
        tracer = Tracer()
        env = build_env(
            full_mesh_topology(3), seed=5, with_traces=False, tracer=tracer
        )
        handle = deploy_app(
            env,
            StreamPairApp("app", source_node="node1"),
            "bass-longest-path",
            config=NO_MIGRATIONS,
            force_assignments={SINK: "node2"},
        )
        _, coordinator = wire_failover(env)

        # node2's crash at t=30 confirms around t=50 (4 missed 5s
        # beats after suspicion), squarely inside the 20..65 outage.
        run_timeline(env, 60.0)
        assert coordinator.deferred_total == 1
        assert coordinator.recovered_count == 0
        assert handle.deployment.node_of(SINK) == "node2"

        run_timeline(env, 120.0)
        assert coordinator.recovered_count == 1
        assert coordinator.deferred == []
        action = coordinator.actions[0]
        assert action.from_node == "node2"
        assert handle.deployment.node_of(SINK) == action.to_node
        # The re-placement happened at the resume instant, not later.
        assert action.time == pytest.approx(65.0)

        kinds = [event.kind for event in tracer.events]
        assert "orchestrator.suspended" in kinds
        assert "recovery.deferred" in kinds
        assert "orchestrator.resumed" in kinds
        assert kinds.index("recovery.deferred") < kinds.index(
            "orchestrator.resumed"
        )

    def test_outage_window_recorded(self):
        env = build_env(full_mesh_topology(3), seed=5, with_traces=False)
        deploy_app(
            env,
            StreamPairApp("app", source_node="node1"),
            "bass-longest-path",
            config=NO_MIGRATIONS,
            force_assignments={SINK: "node2"},
        )
        wire_failover(env, kill_at_s=20.0, down_s=45.0)
        run_timeline(env, 120.0)
        assert env.control_plane.outages == [(20.0, 65.0)]

    def test_suspend_and_resume_are_idempotent(self):
        env = build_env(full_mesh_topology(3), seed=5, with_traces=False)
        deploy_app(
            env,
            StreamPairApp("app", source_node="node1"),
            "bass-longest-path",
            config=NO_MIGRATIONS,
        )
        cp = env.control_plane
        env.netem.start()
        cp.suspend()
        cp.suspend()  # no-op, no second outage entry
        assert len(cp.outages) == 1
        assert cp.suspended
        cp.resume()
        assert not cp.suspended
        assert cp.resume() == []  # already running: nothing drained
        assert len(cp.outages) == 1
        assert cp.outages[0][1] is not None
