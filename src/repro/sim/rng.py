"""Seeded random-number streams.

Every stochastic subsystem (trace generation, workload arrivals, service
times) draws from its own named stream derived from one master seed, so
changing how one subsystem consumes randomness does not perturb the
others.  This is the standard trick for variance reduction in simulation
studies and makes experiments reproducible bit-for-bit.

Stream names are mapped to spawn keys with a *stable* digest (CRC-32),
never Python's built-in ``hash`` which is salted per process.
"""

from __future__ import annotations

import zlib

import numpy as np


def _stable_key(name: str) -> int:
    """Deterministic 32-bit key for a stream name, stable across runs."""
    return zlib.crc32(name.encode("utf-8"))


class RngStreams:
    """A family of independent :class:`numpy.random.Generator` streams.

    Streams are created lazily, keyed by name.  The same (seed, name) pair
    always yields an identical stream, in any process.

    Example:
        >>> streams = RngStreams(seed=7)
        >>> a = streams.get("arrivals").random()
        >>> b = RngStreams(seed=7).get("arrivals").random()
        >>> a == b
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            sequence = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(_stable_key(name),)
            )
            self._streams[name] = np.random.default_rng(sequence)
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive an independent child family, e.g. one per trial."""
        sequence = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(_stable_key(name), 1)
        )
        return RngStreams(seed=int(sequence.generate_state(1)[0]))

    def state_dict(self) -> dict:
        """The family's full position: seed plus every materialized
        stream's bit-generator state (plain dicts, JSON/pickle safe)."""
        return {
            "seed": self._seed,
            "streams": {
                name: generator.bit_generator.state
                for name, generator in sorted(self._streams.items())
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` capture.

        Streams in ``state`` resume exactly where they left off; names
        first requested *after* the restore are derived fresh from the
        seed, identical to a family that was never serialized.
        """
        if int(state["seed"]) != self._seed:
            raise ValueError(
                f"state was captured from seed {state['seed']}, "
                f"this family has seed {self._seed}"
            )
        self._streams.clear()
        for name, bit_state in state["streams"].items():
            self.get(name).bit_generator.state = bit_state
