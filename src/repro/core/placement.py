"""Initial placement: node ranking and greedy packing (§3.2.1).

"To schedule a component, we first rank nodes based on their CPU,
memory, and combined capacity across all of the node's links.  We pack
the node with application components as long as its capacity permits."

The packing walks the heuristic's component order with a *sticky*
cursor: components go onto the current node while CPU and memory fit;
when one does not fit, the cursor advances to the next-ranked node.  If
no node from the cursor onward fits, we fall back to first-fit over the
whole ranking (so feasibility never depends on order alone).  Bandwidth
is honoured as a soft preference: among feasible nodes, ones whose
links can carry the component's inter-node edges (with headroom) win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..cluster.orchestrator import ClusterState
from ..cluster.pod import PodSpec
from ..errors import InsufficientCapacityError
from ..net.netem import NetworkEmulator
from ..obs.trace import NULL_TRACER, TracerBase


@dataclass(frozen=True)
class NodeRank:
    """A node's rank key: link capacity first, then CPU, then memory."""

    name: str
    link_capacity_mbps: float
    cpu: float
    memory_mb: float

    @property
    def sort_key(self) -> tuple[float, float, float, str]:
        return (
            -self.link_capacity_mbps,
            -self.cpu,
            -self.memory_mb,
            self.name,
        )


def rank_nodes(
    cluster: ClusterState,
    netem: Optional[NetworkEmulator] = None,
    *,
    allow: Optional[frozenset[str]] = None,
) -> list[str]:
    """Rank schedulable nodes best-first (§3.2.1).

    Nodes with more aggregate link capacity are preferred, then more
    CPU, then more memory; names break ties deterministically.  Without
    a network emulator (pure resource scheduling) link capacity is 0 for
    every node and the ranking degenerates to CPU/memory.  ``allow``
    restricts the ranking to a subset of nodes (a region's
    jurisdiction).
    """
    ranks = []
    for node in cluster.schedulable_nodes():
        if allow is not None and node.node_name not in allow:
            continue
        if netem is not None:
            link_capacity = netem.topology.total_link_capacity(
                node.node_name, netem.now
            )
        else:
            link_capacity = 0.0
        ranks.append(
            NodeRank(
                name=node.node_name,
                link_capacity_mbps=link_capacity,
                cpu=node.capacity.cpu,
                memory_mb=node.capacity.memory_mb,
            )
        )
    ranks.sort(key=lambda r: r.sort_key)
    return [r.name for r in ranks]


class PlacementEngine:
    """Greedy packing of an ordered component list onto ranked nodes.

    Args:
        cluster: resource ledger; allocations are committed here.
        netem: optional network emulator for bandwidth-aware preferences.
        headroom_fraction: spare link fraction kept when checking
            bandwidth feasibility of a candidate node.
        allow: restrict packing to these nodes (a region's
            jurisdiction); pinned pods may still name nodes outside it,
            since an explicit pin outranks the region boundary.
        tracer: flight recorder for ``placement.decision`` events.
            Deliberately *not* resolved from the process default: shadow
            placements (``explain_placement`` replays the pipeline on a
            scratch ledger) must stay silent unless handed a tracer.
    """

    def __init__(
        self,
        cluster: ClusterState,
        netem: Optional[NetworkEmulator] = None,
        *,
        headroom_fraction: float = 0.0,
        allow: Optional[frozenset[str]] = None,
        tracer: Optional[TracerBase] = None,
    ) -> None:
        self.cluster = cluster
        self.netem = netem
        self.headroom_fraction = headroom_fraction
        self.allow = allow
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def place(
        self,
        pods: Sequence[PodSpec],
        order: Sequence[str],
        *,
        trace_cause: Optional[int] = None,
    ) -> dict[str, str]:
        """Assign pods to nodes following ``order``; commit allocations.

        Args:
            pods: the application's pods (any order).
            order: component names in packing order (from a heuristic);
                must be a permutation of the pod names.
            trace_cause: flight-recorder id of the ``placement.plan``
                event that ordered this packing, if any.

        Returns:
            Mapping pod name → node name.

        Raises:
            InsufficientCapacityError: a pod fits on no node.
        """
        by_name = {pod.name: pod for pod in pods}
        if set(order) != set(by_name):
            raise InsufficientCapacityError(
                "order must be a permutation of the pod names"
            )
        ranking = rank_nodes(self.cluster, self.netem, allow=self.allow)
        assignments: dict[str, str] = {}
        cursor = 0
        for name in order:
            pod = by_name[name]
            if pod.pinned_node is not None:
                node = self._place_pinned(pod)
            else:
                node, cursor = self._place_next(
                    pod, ranking, cursor, assignments, by_name
                )
            self.cluster.node(node).allocate(pod.resources)
            assignments[name] = node
            if self.tracer.enabled:
                self.tracer.emit(
                    "placement.decision",
                    self.netem.now if self.netem is not None else 0.0,
                    app=pod.app,
                    cause=trace_cause,
                    pod=name,
                    node=node,
                    pinned=pod.pinned_node is not None,
                )
        return assignments

    def _place_pinned(self, pod: PodSpec) -> str:
        node = self.cluster.node(pod.pinned_node)
        if not node.can_fit(pod.resources):
            raise InsufficientCapacityError(
                f"pod {pod.name!r} pinned to {pod.pinned_node!r} "
                "which cannot fit it"
            )
        return pod.pinned_node

    def _place_next(
        self,
        pod: PodSpec,
        ranking: list[str],
        cursor: int,
        assignments: dict[str, str],
        by_name: dict[str, PodSpec],
    ) -> tuple[str, int]:
        """Pick a node for ``pod``; return (node, new cursor)."""
        # Pass 1: sticky cursor onward (packing semantics).
        for index in range(cursor, len(ranking)):
            node_name = ranking[index]
            if self._feasible(pod, node_name):
                if self._bandwidth_ok(pod, node_name, assignments, by_name):
                    return node_name, index
        # Pass 2: cursor onward ignoring the bandwidth preference.
        for index in range(cursor, len(ranking)):
            node_name = ranking[index]
            if self._feasible(pod, node_name):
                return node_name, index
        # Pass 3: first-fit over the whole ranking (don't advance cursor).
        for node_name in ranking:
            if self._feasible(pod, node_name):
                return node_name, cursor
        raise InsufficientCapacityError(
            f"no node can fit pod {pod.name!r} "
            f"(cpu={pod.resources.cpu}, mem={pod.resources.memory_mb})"
        )

    def _feasible(self, pod: PodSpec, node_name: str) -> bool:
        return self.cluster.node(node_name).can_fit(pod.resources)

    def _bandwidth_ok(
        self,
        pod: PodSpec,
        node_name: str,
        assignments: dict[str, str],
        by_name: dict[str, PodSpec],
    ) -> bool:
        """Would the node's links carry the pod's inter-node edges?

        Checks both directions: this pod's annotated egress to already
        placed components, and already placed components' egress to it.
        Co-located pairs need no network bandwidth.
        """
        if self.netem is None:
            return True
        for dep, mbps in pod.bandwidth_mbps.items():
            dep_node = assignments.get(dep)
            if dep_node is None or dep_node == node_name or mbps <= 0:
                continue
            if not self._path_can_carry(node_name, dep_node, mbps):
                return False
        for placed_name, placed_node in assignments.items():
            mbps = by_name[placed_name].bandwidth_mbps.get(pod.name, 0.0)
            if mbps <= 0 or placed_node == node_name:
                continue
            if not self._path_can_carry(placed_node, node_name, mbps):
                return False
        return True

    def _path_can_carry(self, src: str, dst: str, mbps: float) -> bool:
        capacity = self.netem.path_capacity(src, dst)
        if capacity == float("inf"):
            return True
        headroom = capacity * self.headroom_fraction
        available = self.netem.path_available_bandwidth(src, dst)
        return available >= mbps + headroom
