"""Unit tests for run-report reconstruction from traces."""

from repro.obs.report import (
    MigrationChain,
    cause_chain,
    migration_chains,
    render_report,
)
from repro.obs.trace import TraceEvent, Tracer


def sample_trace():
    """A minimal but complete causal story: probe -> ... -> restart."""
    tracer = Tracer()
    tracer.emit("run.start", 0.0, seed=0)
    probe = tracer.emit(
        "probe.headroom", 30.0, app="socialnet",
        src="node2", dst="node1",
        capacity_mbps=25.0, available_mbps=1.0, required_mbps=5.0,
        headroom_ok=False,
    )
    violation = tracer.emit(
        "violation.detected", 30.0, app="socialnet", cause=probe,
        component="sfu", dependency="db", goodput=0.2, utilization=0.9,
        severity=1.5,
    )
    plan = tracer.emit(
        "epoch.plan", 30.0, app="socialnet", epoch=1, cause=violation,
        candidates=["sfu"], violations=1,
    )
    selected = tracer.emit(
        "migration.selected", 30.0, app="socialnet", cause=plan,
        component="sfu", to="node3", restart_s=8.0, **{"from": "node2"},
    )
    tracer.emit(
        "migration.deflected", 30.0, app="socialnet", cause=plan,
        component="other", preferred="node4", granted="node5",
    )
    tracer.emit(
        "restart", 30.0, app="socialnet", cause=selected,
        component="sfu", to="node3", restart_s=8.0, **{"from": "node2"},
    )
    return tracer.events


class TestCauseChain:
    def test_walks_to_root(self):
        events = sample_trace()
        by_id = {e.id: e for e in events}
        selected = next(e for e in events if e.kind == "migration.selected")
        kinds = [e.kind for e in cause_chain(by_id, selected)]
        assert kinds == [
            "migration.selected", "epoch.plan", "violation.detected",
            "probe.headroom",
        ]

    def test_broken_reference_terminates(self):
        event = TraceEvent(id=5, kind="restart", time=1.0, cause=99)
        assert cause_chain({5: event}, event) == [event]

    def test_cycle_terminates(self):
        a = TraceEvent(id=1, kind="epoch.plan", time=0.0, cause=2)
        b = TraceEvent(id=2, kind="violation.detected", time=0.0, cause=1)
        chain = cause_chain({1: a, 2: b}, a)
        assert [e.id for e in chain] == [1, 2]


class TestMigrationChains:
    def test_complete_chain_reconstructed(self):
        chains = migration_chains(sample_trace())
        assert len(chains) == 1
        chain = chains[0]
        assert chain.complete
        assert chain.probe.kind == "probe.headroom"
        assert chain.violation.data["component"] == "sfu"
        assert chain.plan.epoch == 1
        assert chain.restart.data["to"] == "node3"
        assert len(chain.deflections) == 1

    def test_missing_restart_is_incomplete(self):
        events = [e for e in sample_trace() if e.kind != "restart"]
        chains = migration_chains(events)
        assert len(chains) == 1
        assert chains[0].restart is None
        assert not chains[0].complete

    def test_no_migrations(self):
        assert migration_chains(sample_trace()[:2]) == []

    def test_empty(self):
        assert migration_chains([]) == []


class TestRenderReport:
    def test_empty_trace(self):
        assert render_report([]) == "(empty trace)"

    def test_full_report_mentions_chain(self):
        text = render_report(sample_trace())
        assert "migrations: 1" in text
        assert "restart" in text
        assert "violation" in text
        assert "probe" in text
        assert "deflected" in text
        assert "!! incomplete cause chain" not in text

    def test_incomplete_chain_is_flagged(self):
        events = [e for e in sample_trace() if e.kind != "restart"]
        assert "!! incomplete cause chain" in render_report(events)

    def test_statistics_section(self):
        text = render_report(sample_trace())
        assert "probes: 0 full, 1 headroom" in text
        assert "violations: 1 detected" in text
        assert "restart seconds: p50=8.00" in text


class TestMigrationChainDataclass:
    def test_complete_requires_all_links(self):
        selected = TraceEvent(id=1, kind="migration.selected", time=0.0)
        assert not MigrationChain(selected=selected).complete


class TestTickProfileSection:
    def test_profile_event_renders_phase_and_solver_lines(self):
        tracer = Tracer()
        tracer.emit("run.start", 0.0, seed=0)
        tracer.emit(
            "profile.tick_phases", 300.0,
            ticks=300,
            phase_seconds={
                "capacity_scan": 0.3, "bookkeeping": 0.15, "solve": 0.9,
            },
            solver={
                "full_solves": 1, "partial_solves": 12,
                "components_resolved": 25, "components": 4,
            },
        )
        report = render_report(tracer.events)
        assert "tick profile @300.0s — 300 emulator tick(s)" in report
        assert "solve" in report
        assert "ms/tick" in report
        assert "12 partial" in report
        assert "25 component(s) re-solved of 4" in report

    def test_last_profile_event_wins(self):
        tracer = Tracer()
        for time, ticks in ((10.0, 10), (20.0, 20)):
            tracer.emit(
                "profile.tick_phases", time,
                ticks=ticks, phase_seconds={"solve": 0.1}, solver={},
            )
        report = render_report(tracer.events)
        assert "tick profile @20.0s — 20 emulator tick(s)" in report
        assert "@10.0s" not in report

    def test_no_profile_event_no_section(self):
        assert "tick profile" not in render_report(sample_trace())
