"""Unit tests for topology (de)serialization."""

import json

import pytest

from repro.errors import TopologyError
from repro.mesh.topology import MeshTopology, citylab_subset


class TestTopologySpec:
    def test_roundtrip(self):
        original = citylab_subset()
        rebuilt = MeshTopology.from_spec(original.to_spec())
        assert set(rebuilt.node_names) == set(original.node_names)
        assert rebuilt.node("node4").cpu_cores == 8
        assert not rebuilt.node("node0").schedulable
        for link in original.links:
            a, b = link.id
            assert rebuilt.capacity(a, b, 0.0) == original.link(
                a, b
            ).base_capacity(a, b)

    def test_from_json_file(self, tmp_path):
        spec = {
            "nodes": [
                {"name": "roof-1", "cpu_cores": 4},
                {"name": "roof-2"},
            ],
            "links": [
                {"a": "roof-1", "b": "roof-2", "capacity_mbps": 18.5},
            ],
        }
        path = tmp_path / "mesh.json"
        path.write_text(json.dumps(spec))
        topo = MeshTopology.from_json(path)
        assert topo.capacity("roof-1", "roof-2", 0.0) == 18.5
        assert topo.node("roof-2").cpu_cores == 4.0  # default

    def test_defaults_applied(self):
        topo = MeshTopology.from_spec({"nodes": [{"name": "n"}]})
        node = topo.node("n")
        assert node.role == "worker"
        assert node.memory_mb == 8192.0

    def test_missing_nodes_key_raises(self):
        with pytest.raises(TopologyError):
            MeshTopology.from_spec({"links": []})

    def test_malformed_node_raises(self):
        with pytest.raises(TopologyError):
            MeshTopology.from_spec({"nodes": [{"cpu_cores": 4}]})

    def test_malformed_link_raises(self):
        with pytest.raises(TopologyError):
            MeshTopology.from_spec(
                {"nodes": [{"name": "a"}, {"name": "b"}],
                 "links": [{"a": "a", "b": "b"}]}
            )

    def test_link_to_unknown_node_raises(self):
        with pytest.raises(TopologyError):
            MeshTopology.from_spec(
                {"nodes": [{"name": "a"}],
                 "links": [{"a": "a", "b": "ghost", "capacity_mbps": 1.0}]}
            )
